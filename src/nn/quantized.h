#ifndef NAI_NN_QUANTIZED_H_
#define NAI_NN_QUANTIZED_H_

#include <cstdint>
#include <vector>

#include "src/nn/linear.h"
#include "src/nn/mlp.h"
#include "src/tensor/matrix.h"

namespace nai::nn {

/// Post-training symmetric per-tensor INT8 quantization of one Linear
/// layer. Activations are quantized dynamically per row (absmax of each
/// row alone, so a row's INT8 result never depends on which other rows
/// share the batch — re-batching in the serving tier cannot change an
/// answer), the INT8 x INT8 products accumulate in INT32 through the
/// dispatched tensor::simd gemm_s8 kernel, and the output is dequantized
/// back to float. Integer accumulation is exact, so results are
/// bit-identical at every SIMD level; the declared accuracy tolerance is
/// only against the float layer this was quantized from.
///
/// Promoted from baselines/quantization (the paper's FP32->INT8
/// comparison) so the serving stack's kThroughputFirst QoS class can run
/// it on the hot path; the baseline aliases the same types.
class QuantizedLinear {
 public:
  explicit QuantizedLinear(const nn::Linear& source);

  tensor::Matrix Forward(const tensor::Matrix& x) const;

  std::int64_t ForwardMacs(std::int64_t rows) const {
    return rows * static_cast<std::int64_t>(in_dim_) *
           static_cast<std::int64_t>(out_dim_);
  }

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  float weight_scale() const { return weight_scale_; }

 private:
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  std::vector<std::int8_t> weight_;  // row-major in x out
  float weight_scale_ = 1.0f;
  tensor::Matrix bias_;  // kept float
};

/// INT8 copy of a float MLP (ReLU between layers, no dropout at inference).
class QuantizedMlp {
 public:
  explicit QuantizedMlp(const nn::Mlp& source);

  tensor::Matrix Forward(const tensor::Matrix& x) const;
  std::int64_t ForwardMacs(std::int64_t rows) const;

  std::size_t num_layers() const { return layers_.size(); }
  const QuantizedLinear& layer(std::size_t i) const { return layers_[i]; }

 private:
  std::vector<QuantizedLinear> layers_;
};

}  // namespace nai::nn

#endif  // NAI_NN_QUANTIZED_H_
