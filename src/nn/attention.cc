#include "src/nn/attention.h"

#include <cassert>
#include <cmath>

#include "src/tensor/ops.h"

namespace nai::nn {

VectorAttention::VectorAttention(std::size_t num_views, std::size_t dim,
                                 tensor::Rng& rng) {
  reference_.Resize(num_views, dim);
  tensor::FillGlorot(reference_.value, rng);
}

tensor::Matrix VectorAttention::Forward(
    const std::vector<const tensor::Matrix*>& views, bool train,
    tensor::Matrix* weights_out) {
  const std::size_t L = num_views();
  assert(views.size() == L);
  const std::size_t n = views[0]->rows();
  const std::size_t d = views[0]->cols();
  assert(d == dim());

  // Local scratch: inference-mode Forward must not touch shared members —
  // the engine classifies concurrent batches on the same head.
  tensor::Matrix scores(n, L);
  tensor::Matrix weights(n, L);
  tensor::Matrix out(n, d);

  for (std::size_t i = 0; i < n; ++i) {
    // q_i^l = sigmoid(V_l[i] . s_l)
    float* qrow = scores.row(i);
    for (std::size_t l = 0; l < L; ++l) {
      const float* v = views[l]->row(i);
      const float* s = reference_.value.row(l);
      float dot = 0.0f;
      for (std::size_t j = 0; j < d; ++j) dot += v[j] * s[j];
      qrow[l] = 1.0f / (1.0f + std::exp(-dot));
    }
    // w_i = softmax_l(q_i)
    float maxq = qrow[0];
    for (std::size_t l = 1; l < L; ++l) maxq = std::max(maxq, qrow[l]);
    float sum = 0.0f;
    float* wrow = weights.row(i);
    for (std::size_t l = 0; l < L; ++l) {
      wrow[l] = std::exp(qrow[l] - maxq);
      sum += wrow[l];
    }
    for (std::size_t l = 0; l < L; ++l) wrow[l] /= sum;
    // out_i = sum_l w_i^l V_l[i]
    float* orow = out.row(i);
    for (std::size_t l = 0; l < L; ++l) {
      const float* v = views[l]->row(i);
      const float w = wrow[l];
      for (std::size_t j = 0; j < d; ++j) orow[j] += w * v[j];
    }
  }

  if (weights_out != nullptr) *weights_out = weights;
  if (train) {
    scores_ = std::move(scores);
    weights_ = std::move(weights);
    cached_views_.clear();
    cached_views_.reserve(L);
    for (const auto* v : views) cached_views_.push_back(*v);
  }
  return out;
}

void VectorAttention::Backward(const tensor::Matrix& grad_out,
                               std::vector<tensor::Matrix>* grad_views) {
  const std::size_t L = num_views();
  const std::size_t d = dim();
  assert(cached_views_.size() == L && "Backward without Forward(train=true)");
  const std::size_t n = cached_views_[0].rows();
  assert(grad_out.rows() == n && grad_out.cols() == d);

  if (grad_views != nullptr) {
    grad_views->assign(L, tensor::Matrix(n, d));
  }

  std::vector<float> dw(L), dq(L);
  for (std::size_t i = 0; i < n; ++i) {
    const float* go = grad_out.row(i);
    const float* wrow = weights_.row(i);
    const float* qrow = scores_.row(i);

    // dL/dw_l = grad_out . V_l[i]
    for (std::size_t l = 0; l < L; ++l) {
      const float* v = cached_views_[l].row(i);
      float dot = 0.0f;
      for (std::size_t j = 0; j < d; ++j) dot += go[j] * v[j];
      dw[l] = dot;
    }
    // softmax backward: dq_l = w_l (dw_l - sum_k dw_k w_k)
    float mix = 0.0f;
    for (std::size_t l = 0; l < L; ++l) mix += dw[l] * wrow[l];
    for (std::size_t l = 0; l < L; ++l) dq[l] = wrow[l] * (dw[l] - mix);

    for (std::size_t l = 0; l < L; ++l) {
      const float sig_grad = qrow[l] * (1.0f - qrow[l]);  // sigmoid'
      const float da = dq[l] * sig_grad;                  // pre-sigmoid grad
      const float* v = cached_views_[l].row(i);
      float* sgrad = reference_.grad.row(l);
      for (std::size_t j = 0; j < d; ++j) sgrad[j] += da * v[j];
      if (grad_views != nullptr) {
        const float* s = reference_.value.row(l);
        float* gv = (*grad_views)[l].row(i);
        for (std::size_t j = 0; j < d; ++j) {
          gv[j] = wrow[l] * go[j] + da * s[j];
        }
      }
    }
  }
}

void VectorAttention::CollectParameters(std::vector<Parameter*>& params) {
  params.push_back(&reference_);
}

}  // namespace nai::nn
