#ifndef NAI_NN_MLP_H_
#define NAI_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "src/nn/linear.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::nn {

/// Multi-layer perceptron: Linear -> ReLU -> [dropout] -> ... -> Linear.
///
/// With `hidden_dims` empty this degenerates to a single Linear layer
/// (a logistic-regression head once paired with softmax cross-entropy),
/// which is the classifier shape SGC uses.
class Mlp {
 public:
  Mlp() = default;

  /// `dims` path is in_dim -> hidden_dims... -> out_dim.
  Mlp(std::size_t in_dim, const std::vector<std::size_t>& hidden_dims,
      std::size_t out_dim, float dropout_rate, tensor::Rng& rng);

  /// Forward pass producing logits. When `train` is true, dropout is applied
  /// to hidden activations (using `rng`) and intermediates are cached.
  tensor::Matrix Forward(const tensor::Matrix& x, bool train,
                         tensor::Rng* rng = nullptr);

  /// Backward from dLoss/dLogits; accumulates parameter grads, returns
  /// dLoss/dInput.
  tensor::Matrix Backward(const tensor::Matrix& grad_logits);

  void CollectParameters(std::vector<Parameter*>& params);

  std::size_t num_layers() const { return layers_.size(); }
  const Linear& layer(std::size_t i) const { return layers_[i]; }
  std::size_t in_dim() const { return layers_.front().in_dim(); }
  std::size_t out_dim() const { return layers_.back().out_dim(); }

  /// Total forward MACs for `rows` input rows.
  std::int64_t ForwardMacs(std::int64_t rows) const;

  /// Total parameter count (weights + biases).
  std::int64_t NumParameters() const;

  /// Deep copy of the parameter values from `other` (shapes must match).
  void CopyParametersFrom(const Mlp& other);

 private:
  std::vector<Linear> layers_;
  float dropout_rate_ = 0.0f;
  // Caches from the last train-mode forward, for backward.
  std::vector<tensor::Matrix> preact_;        // z_l before ReLU, per hidden layer
  std::vector<tensor::Matrix> dropout_mask_;  // per hidden layer
};

}  // namespace nai::nn

#endif  // NAI_NN_MLP_H_
