#include "src/nn/gumbel.h"

#include <cassert>

#include "src/tensor/ops.h"

namespace nai::nn {

GumbelSample GumbelSoftmax(const tensor::Matrix& logits, float tau,
                           tensor::Rng& rng, bool deterministic) {
  assert(tau > 0.0f);
  tensor::Matrix noisy = logits;
  if (!deterministic) {
    float* d = noisy.data();
    for (std::size_t i = 0; i < noisy.size(); ++i) d[i] += rng.NextGumbel();
  }
  GumbelSample out;
  out.soft = tensor::SoftmaxRows(noisy, tau);
  out.hard.Resize(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float* s = out.soft.row(i);
    std::size_t best = 0;
    for (std::size_t j = 1; j < logits.cols(); ++j) {
      if (s[j] > s[best]) best = j;
    }
    out.hard.at(i, best) = 1.0f;
  }
  return out;
}

tensor::Matrix GumbelSoftmaxBackward(const tensor::Matrix& soft,
                                     const tensor::Matrix& grad_soft,
                                     float tau) {
  assert(soft.SameShape(grad_soft));
  tensor::Matrix grad(soft.rows(), soft.cols());
  const float inv_tau = 1.0f / tau;
  for (std::size_t i = 0; i < soft.rows(); ++i) {
    const float* s = soft.row(i);
    const float* g = grad_soft.row(i);
    float* o = grad.row(i);
    float dot = 0.0f;
    for (std::size_t j = 0; j < soft.cols(); ++j) dot += g[j] * s[j];
    for (std::size_t j = 0; j < soft.cols(); ++j) {
      o[j] = inv_tau * s[j] * (g[j] - dot);
    }
  }
  return grad;
}

}  // namespace nai::nn
