#include "src/nn/quantized.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/runtime/thread_pool.h"
#include "src/tensor/ops.h"
#include "src/tensor/simd.h"

namespace nai::nn {

namespace {

float AbsMax(const float* data, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(data[i]));
  return m;
}

std::int8_t QuantizeValue(float v, float inv_scale) {
  const int q = static_cast<int>(std::lround(v * inv_scale));
  return static_cast<std::int8_t>(std::clamp(q, -127, 127));
}

}  // namespace

QuantizedLinear::QuantizedLinear(const nn::Linear& source)
    : in_dim_(source.in_dim()),
      out_dim_(source.out_dim()),
      bias_(source.bias().value) {
  const tensor::Matrix& w = source.weight().value;
  const float absmax = AbsMax(w.data(), w.size());
  weight_scale_ = absmax > 0.0f ? absmax / 127.0f : 1.0f;
  const float inv = 1.0f / weight_scale_;
  weight_.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    weight_[i] = QuantizeValue(w.data()[i], inv);
  }
}

tensor::Matrix QuantizedLinear::Forward(const tensor::Matrix& x) const {
  assert(x.cols() == in_dim_);
  const std::size_t rows = x.rows();

  tensor::Matrix out(rows, out_dim_);
  const tensor::simd::KernelSet& ks = tensor::simd::ActiveKernels();
  // Grain: one output row is an in_dim x out_dim int8 dot-product sweep.
  runtime::ParallelFor(0, rows, in_dim_ * out_dim_,
                       [&](std::size_t r0, std::size_t r1) {
    std::vector<std::int8_t> xq(in_dim_);
    std::vector<std::int32_t> acc(out_dim_);
    for (std::size_t i = r0; i < r1; ++i) {
      // Dynamic per-row activation quantization (absmax, symmetric). The
      // scale depends only on this row's activations — never on which
      // other rows share the batch — so INT8 results are invariant under
      // re-batching, the serving tier's "batching never changes an
      // answer" guarantee extended to kThroughputFirst.
      const float* xrow = x.data() + i * in_dim_;
      const float act_absmax = AbsMax(xrow, in_dim_);
      const float act_scale = act_absmax > 0.0f ? act_absmax / 127.0f : 1.0f;
      const float inv_act = 1.0f / act_scale;
      for (std::size_t p = 0; p < in_dim_; ++p) {
        xq[p] = QuantizeValue(xrow[p], inv_act);
      }
      const float dequant = act_scale * weight_scale_;
      std::fill(acc.begin(), acc.end(), 0);
      ks.gemm_s8(xq.data(), weight_.data(), acc.data(), in_dim_, out_dim_);
      float* orow = out.row(i);
      const float* b = bias_.data();
      for (std::size_t j = 0; j < out_dim_; ++j) {
        orow[j] = static_cast<float>(acc[j]) * dequant + b[j];
      }
    }
  });
  return out;
}

QuantizedMlp::QuantizedMlp(const nn::Mlp& source) {
  layers_.reserve(source.num_layers());
  for (std::size_t i = 0; i < source.num_layers(); ++i) {
    layers_.emplace_back(source.layer(i));
  }
}

tensor::Matrix QuantizedMlp::Forward(const tensor::Matrix& x) const {
  tensor::Matrix h = layers_[0].Forward(x);
  for (std::size_t l = 1; l < layers_.size(); ++l) {
    tensor::ReluInPlace(h);
    h = layers_[l].Forward(h);
  }
  return h;
}

std::int64_t QuantizedMlp::ForwardMacs(std::int64_t rows) const {
  std::int64_t total = 0;
  for (const auto& l : layers_) total += l.ForwardMacs(rows);
  return total;
}

}  // namespace nai::nn
