#include "src/nn/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/tensor/ops.h"

namespace nai::nn {

LossResult SoftmaxCrossEntropy(const tensor::Matrix& logits,
                               const std::vector<std::int32_t>& labels) {
  assert(logits.rows() == labels.size());
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  LossResult out;
  out.grad_logits = tensor::SoftmaxRows(logits);
  const tensor::Matrix log_probs = tensor::LogSoftmaxRows(logits);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t y = labels[i];
    assert(y >= 0 && static_cast<std::size_t>(y) < c);
    loss -= log_probs.at(i, y);
    float* g = out.grad_logits.row(i);
    g[y] -= 1.0f;
    for (std::size_t j = 0; j < c; ++j) g[j] *= inv_n;
  }
  out.loss = static_cast<float>(loss / n);
  return out;
}

LossResult SoftTargetCrossEntropy(const tensor::Matrix& logits,
                                  const tensor::Matrix& targets,
                                  float temperature) {
  assert(logits.SameShape(targets));
  assert(temperature > 0.0f);
  const std::size_t n = logits.rows();
  const std::size_t c = logits.cols();
  LossResult out;
  out.grad_logits = tensor::SoftmaxRows(logits, temperature);

  // log softmax(z/T), computed stably from the scaled logits.
  double loss = 0.0;
  const float inv_nt = 1.0f / (static_cast<float>(n) * temperature);
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = logits.row(i);
    const float* t = targets.row(i);
    float* g = out.grad_logits.row(i);
    float maxv = z[0] / temperature;
    for (std::size_t j = 1; j < c; ++j) {
      maxv = std::max(maxv, z[j] / temperature);
    }
    float sum = 0.0f;
    for (std::size_t j = 0; j < c; ++j) {
      sum += std::exp(z[j] / temperature - maxv);
    }
    const float lse = maxv + std::log(sum);
    for (std::size_t j = 0; j < c; ++j) {
      loss -= t[j] * (z[j] / temperature - lse);
      g[j] = (g[j] - t[j]) * inv_nt;
    }
  }
  out.loss = static_cast<float>(loss / n);
  return out;
}

LossResult CrossEntropyOnProbabilities(
    const tensor::Matrix& probs, const std::vector<std::int32_t>& labels) {
  assert(probs.rows() == labels.size());
  const std::size_t n = probs.rows();
  LossResult out;
  out.grad_logits.Resize(probs.rows(), probs.cols());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  constexpr float kEps = 1e-8f;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t y = labels[i];
    const float p = std::max(probs.at(i, y), kEps);
    loss -= std::log(p);
    out.grad_logits.at(i, y) = -inv_n / p;
  }
  out.loss = static_cast<float>(loss / n);
  return out;
}

float Accuracy(const tensor::Matrix& logits,
               const std::vector<std::int32_t>& labels) {
  assert(logits.rows() == labels.size());
  if (labels.empty()) return 0.0f;
  const std::vector<std::int32_t> pred = tensor::ArgmaxRows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(labels.size());
}

}  // namespace nai::nn
