#ifndef NAI_NN_ATTENTION_H_
#define NAI_NN_ATTENTION_H_

#include <vector>

#include "src/nn/parameter.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::nn {

/// Node-wise scalar attention over L per-depth "views" of each node.
///
/// Given views V_l (n x d), l = 0..L-1, and learned per-view reference
/// vectors s_l (rows of a single L x d parameter):
///
///   q_i^l = sigmoid(V_l[i] · s_l)         (self-attention score, Eq. 18)
///   w_i   = softmax_l(q_i^l)              (normalized weights)
///   out_i = sum_l w_i^l V_l[i]            (combined view)
///
/// This is the node-wise attention used both by GAMLP's recursive feature
/// combination (Eq. 5) and by Inception Distillation's ensemble teacher
/// (Eq. 18), where the views are classifier prediction vectors.
class VectorAttention {
 public:
  VectorAttention() = default;
  VectorAttention(std::size_t num_views, std::size_t dim, tensor::Rng& rng);

  /// Combines the views. With `train` true, caches intermediates; with
  /// `train` false no member state is touched, so concurrent inference
  /// forwards on the same instance are safe. `weights_out`, when non-null,
  /// receives the per-node attention weights (n x L) of this call — the
  /// race-free way to observe them in inference mode.
  tensor::Matrix Forward(const std::vector<const tensor::Matrix*>& views,
                         bool train, tensor::Matrix* weights_out = nullptr);

  /// Backward from dLoss/dOut. Accumulates the gradient of the reference
  /// vectors; if `grad_views` is non-null it receives dLoss/dV_l for each
  /// view (resized as needed). Requires a previous Forward(train=true).
  void Backward(const tensor::Matrix& grad_out,
                std::vector<tensor::Matrix>* grad_views);

  /// Per-node attention weights from the last *train-mode* forward (n x L);
  /// inference-mode forwards deliberately leave this untouched (use the
  /// `weights_out` parameter instead).
  const tensor::Matrix& last_weights() const { return weights_; }

  Parameter& reference() { return reference_; }
  void CollectParameters(std::vector<Parameter*>& params);

  std::size_t num_views() const { return reference_.value.rows(); }
  std::size_t dim() const { return reference_.value.cols(); }

 private:
  Parameter reference_;            // L x d, row l is s_l
  std::vector<tensor::Matrix> cached_views_;
  tensor::Matrix scores_;          // n x L, q before softmax (post-sigmoid)
  tensor::Matrix weights_;         // n x L, softmax over views
};

}  // namespace nai::nn

#endif  // NAI_NN_ATTENTION_H_
