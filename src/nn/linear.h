#ifndef NAI_NN_LINEAR_H_
#define NAI_NN_LINEAR_H_

#include <cstdint>
#include <vector>

#include "src/nn/parameter.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::nn {

/// Fully-connected layer Y = X W + b with cached input for backward.
///
/// W is stored (in_dim x out_dim); b is (1 x out_dim). Glorot-uniform init.
class Linear {
 public:
  Linear() = default;
  Linear(std::size_t in_dim, std::size_t out_dim, tensor::Rng& rng);

  /// Forward pass. When `train` is true the input is cached for Backward.
  tensor::Matrix Forward(const tensor::Matrix& x, bool train);

  /// Backward pass: accumulates dW, db from `grad_out` and the cached input;
  /// returns grad w.r.t. the input. Must follow a Forward(train=true).
  tensor::Matrix Backward(const tensor::Matrix& grad_out);

  std::size_t in_dim() const { return weight_.value.rows(); }
  std::size_t out_dim() const { return weight_.value.cols(); }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }

  /// Registers this layer's parameters into `params`.
  void CollectParameters(std::vector<Parameter*>& params);

  /// Multiply-accumulate count of one forward pass over `rows` rows.
  std::int64_t ForwardMacs(std::int64_t rows) const {
    return rows * static_cast<std::int64_t>(in_dim()) *
           static_cast<std::int64_t>(out_dim());
  }

 private:
  Parameter weight_;
  Parameter bias_;
  tensor::Matrix cached_input_;
};

}  // namespace nai::nn

#endif  // NAI_NN_LINEAR_H_
