#ifndef NAI_NN_PARAMETER_H_
#define NAI_NN_PARAMETER_H_

#include "src/tensor/matrix.h"

namespace nai::nn {

/// A trainable tensor: value plus accumulated gradient of the same shape.
/// Layers own their parameters; optimizers hold non-owning pointers to them.
struct Parameter {
  tensor::Matrix value;
  tensor::Matrix grad;

  void Resize(std::size_t rows, std::size_t cols) {
    value.Resize(rows, cols);
    grad.Resize(rows, cols);
  }

  void ZeroGrad() { grad.Fill(0.0f); }
};

}  // namespace nai::nn

#endif  // NAI_NN_PARAMETER_H_
