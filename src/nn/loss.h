#ifndef NAI_NN_LOSS_H_
#define NAI_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/matrix.h"

namespace nai::nn {

/// Value and gradient of a loss over a batch of logits.
struct LossResult {
  float loss = 0.0f;
  tensor::Matrix grad_logits;  // same shape as the logits, already / batch
};

/// Mean softmax cross-entropy against integer labels (Eq. 16's L_c):
///   L = -(1/N) sum_i log softmax(z_i)[y_i]
/// Gradient: (softmax(z) - onehot(y)) / N.
LossResult SoftmaxCrossEntropy(const tensor::Matrix& logits,
                               const std::vector<std::int32_t>& labels);

/// Mean cross-entropy against soft target distributions with temperature T
/// (Hinton KD, Eqs. 14-15):
///   L = -(1/N) sum_i sum_c target_ic * log softmax(z_i / T)[c]
/// Gradient w.r.t. z: (softmax(z/T) - target) / (N * T).
/// `targets` rows must be probability distributions.
LossResult SoftTargetCrossEntropy(const tensor::Matrix& logits,
                                  const tensor::Matrix& targets,
                                  float temperature);

/// Mean cross-entropy where the *prediction* is already a probability
/// distribution (e.g. the ensemble teacher's z̄ in Eq. 20). Returns the loss
/// and the gradient w.r.t. the probabilities themselves:
///   dL/dp_ic = -onehot_ic / (N * p_ic)   (clamped for stability)
LossResult CrossEntropyOnProbabilities(const tensor::Matrix& probs,
                                       const std::vector<std::int32_t>& labels);

/// Fraction of rows whose argmax equals the label.
float Accuracy(const tensor::Matrix& logits,
               const std::vector<std::int32_t>& labels);

}  // namespace nai::nn

#endif  // NAI_NN_LOSS_H_
