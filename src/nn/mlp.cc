#include "src/nn/mlp.h"

#include <cassert>

#include "src/tensor/ops.h"

namespace nai::nn {

Mlp::Mlp(std::size_t in_dim, const std::vector<std::size_t>& hidden_dims,
         std::size_t out_dim, float dropout_rate, tensor::Rng& rng)
    : dropout_rate_(dropout_rate) {
  std::size_t prev = in_dim;
  for (const std::size_t h : hidden_dims) {
    layers_.emplace_back(prev, h, rng);
    prev = h;
  }
  layers_.emplace_back(prev, out_dim, rng);
}

tensor::Matrix Mlp::Forward(const tensor::Matrix& x, bool train,
                            tensor::Rng* rng) {
  assert(!layers_.empty());
  if (train) {
    preact_.assign(layers_.size() - 1, tensor::Matrix());
    dropout_mask_.assign(layers_.size() - 1, tensor::Matrix());
  }
  tensor::Matrix h = layers_[0].Forward(x, train);
  for (std::size_t l = 1; l < layers_.size(); ++l) {
    if (train) preact_[l - 1] = h;
    tensor::ReluInPlace(h);
    if (train && dropout_rate_ > 0.0f) {
      assert(rng != nullptr && "dropout in train mode requires an Rng");
      tensor::DropoutInPlace(h, dropout_rate_, dropout_mask_[l - 1],
                             [rng] { return rng->NextFloat(); });
    } else if (train) {
      dropout_mask_[l - 1].Resize(h.rows(), h.cols());
      dropout_mask_[l - 1].Fill(1.0f);
    }
    h = layers_[l].Forward(h, train);
  }
  return h;
}

tensor::Matrix Mlp::Backward(const tensor::Matrix& grad_logits) {
  tensor::Matrix grad = layers_.back().Backward(grad_logits);
  for (std::size_t l = layers_.size() - 1; l-- > 0;) {
    // Undo dropout then ReLU, in the reverse of the forward order.
    if (dropout_rate_ >= 0.0f && !dropout_mask_[l].empty()) {
      float* g = grad.data();
      const float* m = dropout_mask_[l].data();
      for (std::size_t i = 0; i < grad.size(); ++i) g[i] *= m[i];
    }
    tensor::ReluBackwardInPlace(preact_[l], grad);
    grad = layers_[l].Backward(grad);
  }
  return grad;
}

void Mlp::CollectParameters(std::vector<Parameter*>& params) {
  for (auto& layer : layers_) layer.CollectParameters(params);
}

std::int64_t Mlp::ForwardMacs(std::int64_t rows) const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) total += layer.ForwardMacs(rows);
  return total;
}

std::int64_t Mlp::NumParameters() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) {
    total += static_cast<std::int64_t>(layer.weight().value.size()) +
             static_cast<std::int64_t>(layer.bias().value.size());
  }
  return total;
}

void Mlp::CopyParametersFrom(const Mlp& other) {
  assert(layers_.size() == other.layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    assert(layers_[l].weight().value.SameShape(other.layers_[l].weight().value));
    layers_[l].weight().value = other.layers_[l].weight().value;
    layers_[l].bias().value = other.layers_[l].bias().value;
  }
}

}  // namespace nai::nn
