#include "src/nn/adam.h"

#include <cassert>
#include <cmath>

namespace nai::nn {

void Adam::Register(const std::vector<Parameter*>& params) {
  assert(step_count_ == 0 && "register all parameters before stepping");
  for (Parameter* p : params) params_.push_back(p);
}

void Adam::Step() {
  if (m_.empty()) {
    m_.resize(params_.size());
    v_.resize(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
      m_[i].Resize(params_[i]->value.rows(), params_[i]->value.cols());
      v_[i].Resize(params_[i]->value.rows(), params_[i]->value.cols());
    }
  }
  ++step_count_;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float bias1 = 1.0f - std::pow(b1, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(b2, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* val = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      float grad = g[j];
      if (config_.weight_decay > 0.0f) grad += config_.weight_decay * val[j];
      m[j] = b1 * m[j] + (1.0f - b1) * grad;
      v[j] = b2 * v[j] + (1.0f - b2) * grad * grad;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      val[j] -= config_.learning_rate * m_hat /
                (std::sqrt(v_hat) + config_.epsilon);
    }
  }
}

void Adam::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

}  // namespace nai::nn
