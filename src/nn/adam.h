#ifndef NAI_NN_ADAM_H_
#define NAI_NN_ADAM_H_

#include <vector>

#include "src/nn/parameter.h"
#include "src/tensor/matrix.h"

namespace nai::nn {

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  /// Decoupled L2 weight decay (the paper's "weight decay" hyper-parameter).
  float weight_decay = 0.0f;
};

/// Adam optimizer over a fixed set of registered parameters.
/// Register all parameters before the first Step(); slots are allocated
/// lazily on first Step to match parameter shapes.
class Adam {
 public:
  explicit Adam(const AdamConfig& config) : config_(config) {}

  /// Adds parameters (non-owning; must outlive the optimizer).
  void Register(const std::vector<Parameter*>& params);

  /// Applies one Adam update from each parameter's accumulated gradient,
  /// then leaves gradients untouched (call ZeroGrad separately).
  void Step();

  /// Zeroes all registered gradients.
  void ZeroGrad();

  int step_count() const { return step_count_; }
  AdamConfig& config() { return config_; }

 private:
  AdamConfig config_;
  std::vector<Parameter*> params_;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
  int step_count_ = 0;
};

}  // namespace nai::nn

#endif  // NAI_NN_ADAM_H_
