#include "src/nn/linear.h"

#include <cassert>

#include "src/tensor/ops.h"

namespace nai::nn {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, tensor::Rng& rng) {
  weight_.Resize(in_dim, out_dim);
  bias_.Resize(1, out_dim);
  tensor::FillGlorot(weight_.value, rng);
}

tensor::Matrix Linear::Forward(const tensor::Matrix& x, bool train) {
  assert(x.cols() == in_dim());
  tensor::Matrix y = tensor::MatMul(x, weight_.value);
  tensor::AddRowBias(y, bias_.value);
  if (train) cached_input_ = x;
  return y;
}

tensor::Matrix Linear::Backward(const tensor::Matrix& grad_out) {
  assert(grad_out.cols() == out_dim());
  assert(cached_input_.rows() == grad_out.rows() &&
         "Backward without matching Forward(train=true)");
  tensor::AddInPlace(weight_.grad,
                     tensor::MatMulTransposeA(cached_input_, grad_out));
  tensor::AddInPlace(bias_.grad, tensor::ColumnSums(grad_out));
  return tensor::MatMulTransposeB(grad_out, weight_.value);
}

void Linear::CollectParameters(std::vector<Parameter*>& params) {
  params.push_back(&weight_);
  params.push_back(&bias_);
}

}  // namespace nai::nn
