#ifndef NAI_IO_CHECKPOINT_H_
#define NAI_IO_CHECKPOINT_H_

#include <istream>
#include <ostream>
#include <string>

#include "src/core/classifier_stack.h"
#include "src/core/nap_gate.h"
#include "src/core/stationary.h"
#include "src/graph/graph.h"

namespace nai::io {

/// Checkpointing for trained NAI deployments: the classifier bank, the
/// gate stack, and the stationary pooled vector. The loading side
/// constructs the objects with the same configuration (depth, dims) first;
/// loads verify every tensor shape and throw nai::IoError on any
/// mismatch, so a checkpoint from a different architecture cannot be
/// silently half-applied.

/// Serializes all trainable tensors of the bank (every head, depths 1..k).
void SaveClassifierStack(std::ostream& os, core::ClassifierStack& stack);
void LoadClassifierStack(std::istream& is, core::ClassifierStack& stack);

/// Serializes the gate weights and biases (depths 1..k-1).
void SaveGateStack(std::ostream& os, core::GateStack& gates);
void LoadGateStack(std::istream& is, core::GateStack& gates);

/// Serializes the stationary pooled vector + γ; loading reattaches to the
/// serving graph (degrees come from it).
void SaveStationaryState(std::ostream& os, const core::StationaryState& state);
core::StationaryState LoadStationaryState(std::istream& is,
                                          const graph::Graph& graph);

/// Convenience: file-path wrappers. Throw on IO errors.
void SaveClassifierStackFile(const std::string& path,
                             core::ClassifierStack& stack);
void LoadClassifierStackFile(const std::string& path,
                             core::ClassifierStack& stack);

}  // namespace nai::io

#endif  // NAI_IO_CHECKPOINT_H_
