#include "src/io/serialize.h"

#include "src/runtime/error.h"

#include <stdexcept>

namespace nai::io {

namespace {

void WriteBytes(std::ostream& os, const void* data, std::size_t n) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!os) throw IoError("nai::io: write failed");
}

void ReadBytes(std::istream& is, void* data, std::size_t n) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is.gcount()) != n) {
    throw IoError("nai::io: short read / truncated stream");
  }
}

}  // namespace

void WriteHeader(std::ostream& os, const std::string& tag) {
  std::uint32_t magic = kMagic;
  WriteBytes(os, &magic, sizeof(magic));
  WriteString(os, tag);
}

void ReadHeader(std::istream& is, const std::string& expected_tag) {
  std::uint32_t magic = 0;
  ReadBytes(is, &magic, sizeof(magic));
  if (magic != kMagic) {
    throw IoError("nai::io: bad magic (not a NAI artifact)");
  }
  const std::string tag = ReadString(is);
  if (tag != expected_tag) {
    throw IoError("nai::io: artifact kind mismatch: expected '" +
                             expected_tag + "', found '" + tag + "'");
  }
}

void WriteU64(std::ostream& os, std::uint64_t v) {
  WriteBytes(os, &v, sizeof(v));
}

std::uint64_t ReadU64(std::istream& is) {
  std::uint64_t v = 0;
  ReadBytes(is, &v, sizeof(v));
  return v;
}

void WriteI32(std::ostream& os, std::int32_t v) {
  WriteBytes(os, &v, sizeof(v));
}

std::int32_t ReadI32(std::istream& is) {
  std::int32_t v = 0;
  ReadBytes(is, &v, sizeof(v));
  return v;
}

void WriteF32(std::ostream& os, float v) { WriteBytes(os, &v, sizeof(v)); }

float ReadF32(std::istream& is) {
  float v = 0.0f;
  ReadBytes(is, &v, sizeof(v));
  return v;
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU64(os, s.size());
  if (!s.empty()) WriteBytes(os, s.data(), s.size());
}

std::string ReadString(std::istream& is) {
  const std::uint64_t n = ReadU64(is);
  if (n > (1ull << 20)) {
    throw IoError("nai::io: implausible string length");
  }
  std::string s(n, '\0');
  if (n > 0) ReadBytes(is, s.data(), n);
  return s;
}

void WriteMatrix(std::ostream& os, const tensor::Matrix& m) {
  WriteU64(os, m.rows());
  WriteU64(os, m.cols());
  if (m.size() > 0) WriteBytes(os, m.data(), m.size() * sizeof(float));
}

tensor::Matrix ReadMatrix(std::istream& is) {
  const std::uint64_t rows = ReadU64(is);
  const std::uint64_t cols = ReadU64(is);
  if (rows > (1ull << 32) || cols > (1ull << 24)) {
    throw IoError("nai::io: implausible matrix shape");
  }
  tensor::Matrix m(rows, cols);
  if (m.size() > 0) ReadBytes(is, m.data(), m.size() * sizeof(float));
  return m;
}

void WriteI32Vector(std::ostream& os, const std::vector<std::int32_t>& v) {
  WriteU64(os, v.size());
  if (!v.empty()) {
    WriteBytes(os, v.data(), v.size() * sizeof(std::int32_t));
  }
}

std::vector<std::int32_t> ReadI32Vector(std::istream& is) {
  const std::uint64_t n = ReadU64(is);
  if (n > (1ull << 32)) {
    throw IoError("nai::io: implausible vector length");
  }
  std::vector<std::int32_t> v(n);
  if (n > 0) ReadBytes(is, v.data(), n * sizeof(std::int32_t));
  return v;
}

}  // namespace nai::io
