#include "src/io/graph_io.h"

#include "src/runtime/error.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nai::io {

namespace {

[[noreturn]] void ParseError(const std::string& what, std::int64_t line) {
  throw IoError("parse error at line " + std::to_string(line) +
                           ": " + what);
}

bool IsSkippable(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;  // all whitespace
}

std::ifstream OpenOrThrow(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw IoError("cannot open: " + path);
  return is;
}

}  // namespace

graph::Graph ReadEdgeList(std::istream& is, std::int64_t num_nodes) {
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  std::int64_t max_id = -1;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (IsSkippable(line)) continue;
    std::istringstream ls(line);
    std::int64_t u, v;
    if (!(ls >> u >> v)) ParseError("expected 'u v'", line_no);
    if (u < 0 || v < 0) ParseError("negative node id", line_no);
    if (num_nodes >= 0 && (u >= num_nodes || v >= num_nodes)) {
      ParseError("node id exceeds declared node count", line_no);
    }
    max_id = std::max({max_id, u, v});
    edges.emplace_back(static_cast<std::int32_t>(u),
                       static_cast<std::int32_t>(v));
  }
  const std::int64_t n = num_nodes >= 0 ? num_nodes : max_id + 1;
  return graph::Graph::FromEdges(std::max<std::int64_t>(n, 0), edges);
}

graph::Graph ReadEdgeListFile(const std::string& path,
                              std::int64_t num_nodes) {
  std::ifstream is = OpenOrThrow(path);
  return ReadEdgeList(is, num_nodes);
}

void WriteEdgeList(std::ostream& os, const graph::Graph& graph) {
  os << "# " << graph.num_nodes() << " nodes, " << graph.num_edges()
     << " undirected edges\n";
  for (std::int32_t v = 0; v < graph.num_nodes(); ++v) {
    for (const auto* it = graph.neighbors_begin(v);
         it != graph.neighbors_end(v); ++it) {
      if (*it > v) os << v << ' ' << *it << '\n';
    }
  }
}

tensor::Matrix ReadFeatures(std::istream& is) {
  std::vector<std::vector<float>> rows;
  std::string line;
  std::int64_t line_no = 0;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (IsSkippable(line)) continue;
    std::istringstream ls(line);
    std::vector<float> row;
    float v;
    while (ls >> v) row.push_back(v);
    if (!ls.eof()) ParseError("non-numeric feature value", line_no);
    if (row.empty()) ParseError("empty feature row", line_no);
    if (width == 0) {
      width = row.size();
    } else if (row.size() != width) {
      ParseError("inconsistent feature width", line_no);
    }
    rows.push_back(std::move(row));
  }
  tensor::Matrix m(rows.size(), width);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    m.SetRow(i, rows[i].data());
  }
  return m;
}

tensor::Matrix ReadFeaturesFile(const std::string& path) {
  std::ifstream is = OpenOrThrow(path);
  return ReadFeatures(is);
}

void WriteFeatures(std::ostream& os, const tensor::Matrix& features) {
  for (std::size_t i = 0; i < features.rows(); ++i) {
    const float* row = features.row(i);
    for (std::size_t j = 0; j < features.cols(); ++j) {
      if (j > 0) os << ' ';
      os << row[j];
    }
    os << '\n';
  }
}

std::vector<std::int32_t> ReadLabels(std::istream& is) {
  std::vector<std::int32_t> labels;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (IsSkippable(line)) continue;
    std::istringstream ls(line);
    std::int64_t y;
    if (!(ls >> y)) ParseError("expected an integer label", line_no);
    labels.push_back(static_cast<std::int32_t>(y));
  }
  return labels;
}

std::vector<std::int32_t> ReadLabelsFile(const std::string& path) {
  std::ifstream is = OpenOrThrow(path);
  return ReadLabels(is);
}

void WriteLabels(std::ostream& os, const std::vector<std::int32_t>& labels) {
  for (const std::int32_t y : labels) os << y << '\n';
}

}  // namespace nai::io
