#include "src/io/checkpoint.h"

#include "src/runtime/error.h"

#include <fstream>
#include <stdexcept>

#include "src/io/serialize.h"

namespace nai::io {

namespace {

void WriteParams(std::ostream& os,
                 const std::vector<nn::Parameter*>& params) {
  WriteU64(os, params.size());
  for (const nn::Parameter* p : params) WriteMatrix(os, p->value);
}

void ReadParamsInto(std::istream& is,
                    const std::vector<nn::Parameter*>& params) {
  const std::uint64_t count = ReadU64(is);
  if (count != params.size()) {
    throw IoError("checkpoint: parameter count mismatch");
  }
  for (nn::Parameter* p : params) {
    tensor::Matrix m = ReadMatrix(is);
    if (!m.SameShape(p->value)) {
      throw IoError("checkpoint: tensor shape mismatch: stored " +
                               m.ShapeString() + " vs model " +
                               p->value.ShapeString());
    }
    p->value = std::move(m);
  }
}

}  // namespace

void SaveClassifierStack(std::ostream& os, core::ClassifierStack& stack) {
  WriteHeader(os, "classifier_stack");
  WriteI32(os, stack.depth());
  for (int l = 1; l <= stack.depth(); ++l) {
    WriteParams(os, stack.HeadParameters(l));
  }
}

void LoadClassifierStack(std::istream& is, core::ClassifierStack& stack) {
  ReadHeader(is, "classifier_stack");
  const std::int32_t depth = ReadI32(is);
  if (depth != stack.depth()) {
    throw IoError("checkpoint: classifier depth mismatch");
  }
  for (int l = 1; l <= stack.depth(); ++l) {
    ReadParamsInto(is, stack.HeadParameters(l));
  }
}

void SaveGateStack(std::ostream& os, core::GateStack& gates) {
  WriteHeader(os, "gate_stack");
  WriteI32(os, gates.max_depth());
  for (int l = 1; l < gates.max_depth(); ++l) {
    WriteMatrix(os, gates.gate_weight(l).value);
    WriteMatrix(os, gates.gate_bias(l).value);
  }
}

void LoadGateStack(std::istream& is, core::GateStack& gates) {
  ReadHeader(is, "gate_stack");
  const std::int32_t depth = ReadI32(is);
  if (depth != gates.max_depth()) {
    throw IoError("checkpoint: gate depth mismatch");
  }
  for (int l = 1; l < gates.max_depth(); ++l) {
    tensor::Matrix w = ReadMatrix(is);
    tensor::Matrix b = ReadMatrix(is);
    if (!w.SameShape(gates.gate_weight(l).value) ||
        !b.SameShape(gates.gate_bias(l).value)) {
      throw IoError("checkpoint: gate shape mismatch");
    }
    gates.gate_weight(l).value = std::move(w);
    gates.gate_bias(l).value = std::move(b);
  }
}

void SaveStationaryState(std::ostream& os,
                         const core::StationaryState& state) {
  WriteHeader(os, "stationary_state");
  WriteF32(os, state.gamma());
  WriteMatrix(os, state.pooled());
}

core::StationaryState LoadStationaryState(std::istream& is,
                                          const graph::Graph& graph) {
  ReadHeader(is, "stationary_state");
  const float gamma = ReadF32(is);
  tensor::Matrix pooled = ReadMatrix(is);
  return core::StationaryState::FromPooled(graph, std::move(pooled), gamma);
}

void SaveClassifierStackFile(const std::string& path,
                             core::ClassifierStack& stack) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open for write: " + path);
  SaveClassifierStack(os, stack);
}

void LoadClassifierStackFile(const std::string& path,
                             core::ClassifierStack& stack) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open for read: " + path);
  LoadClassifierStack(is, stack);
}

}  // namespace nai::io
