#ifndef NAI_IO_SERIALIZE_H_
#define NAI_IO_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"

namespace nai::io {

/// Minimal binary serialization for trained models: little-endian POD
/// fields behind a magic/version header. Deliberately simple — the goal is
/// "save the trained pipeline, load it in the serving process", not a
/// general interchange format.
///
/// Wire format of a matrix: u64 rows, u64 cols, rows*cols f32.
/// Every top-level writer starts with WriteHeader(tag) and readers verify
/// it, so mixing up artifact kinds fails loudly instead of mis-parsing.

inline constexpr std::uint32_t kMagic = 0x4e414931;  // "NAI1"

/// Throws nai::IoError (an std::runtime_error) on short reads / bad magic
/// throughout.
void WriteHeader(std::ostream& os, const std::string& tag);
void ReadHeader(std::istream& is, const std::string& expected_tag);

void WriteU64(std::ostream& os, std::uint64_t v);
std::uint64_t ReadU64(std::istream& is);

void WriteI32(std::ostream& os, std::int32_t v);
std::int32_t ReadI32(std::istream& is);

void WriteF32(std::ostream& os, float v);
float ReadF32(std::istream& is);

void WriteString(std::ostream& os, const std::string& s);
std::string ReadString(std::istream& is);

void WriteMatrix(std::ostream& os, const tensor::Matrix& m);
tensor::Matrix ReadMatrix(std::istream& is);

void WriteI32Vector(std::ostream& os, const std::vector<std::int32_t>& v);
std::vector<std::int32_t> ReadI32Vector(std::istream& is);

}  // namespace nai::io

#endif  // NAI_IO_SERIALIZE_H_
