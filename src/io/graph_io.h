#ifndef NAI_IO_GRAPH_IO_H_
#define NAI_IO_GRAPH_IO_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/matrix.h"

namespace nai::io {

/// Plain-text loaders for user-provided graphs, so the library is usable
/// on real data without writing any glue code:
///
///  * edge list: one "u v" pair per line (whitespace separated), '#'
///    comments and blank lines ignored; node ids are 0-based. The node
///    count is max id + 1 unless `num_nodes` overrides it.
///  * features: one node per line, f whitespace-separated floats.
///  * labels: one integer per line.
///
/// All loaders throw nai::IoError with a line number on parse errors.

graph::Graph ReadEdgeList(std::istream& is, std::int64_t num_nodes = -1);
graph::Graph ReadEdgeListFile(const std::string& path,
                              std::int64_t num_nodes = -1);
void WriteEdgeList(std::ostream& os, const graph::Graph& graph);

tensor::Matrix ReadFeatures(std::istream& is);
tensor::Matrix ReadFeaturesFile(const std::string& path);
void WriteFeatures(std::ostream& os, const tensor::Matrix& features);

std::vector<std::int32_t> ReadLabels(std::istream& is);
std::vector<std::int32_t> ReadLabelsFile(const std::string& path);
void WriteLabels(std::ostream& os, const std::vector<std::int32_t>& labels);

}  // namespace nai::io

#endif  // NAI_IO_GRAPH_IO_H_
