#include "src/models/gamlp.h"

#include <cassert>

namespace nai::models {

GamlpHead::GamlpHead(const ModelConfig& config, int depth, tensor::Rng& rng)
    : depth_(depth),
      feature_dim_(config.feature_dim),
      attention_(depth + 1, config.feature_dim, rng),
      mlp_(config.feature_dim, config.hidden_dims, config.num_classes,
           config.dropout, rng) {}

tensor::Matrix GamlpHead::Forward(const FeatureViews& views, bool train,
                                  tensor::Rng* rng) {
  assert(views.size() == expected_views());
  const tensor::Matrix combined = attention_.Forward(views, train);
  return mlp_.Forward(combined, train, rng);
}

void GamlpHead::Backward(const tensor::Matrix& grad_logits) {
  const tensor::Matrix grad_combined = mlp_.Backward(grad_logits);
  // Views are precomputed propagated features (constants), so their
  // gradients are not needed.
  attention_.Backward(grad_combined, nullptr);
}

void GamlpHead::CollectParameters(std::vector<nn::Parameter*>& params) {
  attention_.CollectParameters(params);
  mlp_.CollectParameters(params);
}

std::int64_t GamlpHead::ForwardMacs(std::int64_t rows) const {
  // Attention: (depth+1) dot products of length f per node, plus the
  // weighted combination of (depth+1) views.
  const std::int64_t att =
      2 * rows * static_cast<std::int64_t>(depth_ + 1) *
      static_cast<std::int64_t>(feature_dim_);
  return att + mlp_.ForwardMacs(rows);
}

}  // namespace nai::models

namespace nai::models {

tensor::Matrix GamlpHead::Reduce(const FeatureViews& views) {
  assert(views.size() == expected_views());
  return attention_.Forward(views, /*train=*/false);
}

}  // namespace nai::models
