#ifndef NAI_MODELS_GAMLP_H_
#define NAI_MODELS_GAMLP_H_

#include "src/models/scalable_gnn.h"
#include "src/nn/attention.h"
#include "src/nn/mlp.h"

namespace nai::models {

/// GAMLP head (Zhang et al., 2022), basic JK-attention variant: combine the
/// propagated features at depths 0..depth with node-wise attention weights
/// T^(l) (Eq. 5), then classify the combination with an MLP. The attention
/// reference vectors and the MLP train jointly.
class GamlpHead : public DepthHead {
 public:
  GamlpHead(const ModelConfig& config, int depth, tensor::Rng& rng);

  tensor::Matrix Forward(const FeatureViews& views, bool train,
                         tensor::Rng* rng) override;
  void Backward(const tensor::Matrix& grad_logits) override;
  void CollectParameters(std::vector<nn::Parameter*>& params) override;
  std::int64_t ForwardMacs(std::int64_t rows) const override;
  std::size_t expected_views() const override { return depth_ + 1; }
  std::size_t num_classes() const override { return mlp_.out_dim(); }
  tensor::Matrix Reduce(const FeatureViews& views) override;
  const nn::Mlp& classifier_mlp() const override { return mlp_; }

 private:
  int depth_;
  std::size_t feature_dim_;
  nn::VectorAttention attention_;
  nn::Mlp mlp_;
};

}  // namespace nai::models

#endif  // NAI_MODELS_GAMLP_H_
