#ifndef NAI_MODELS_S2GC_H_
#define NAI_MODELS_S2GC_H_

#include "src/models/scalable_gnn.h"
#include "src/nn/mlp.h"

namespace nai::models {

/// S2GC head (Zhu & Koniusz, 2021): average the propagated features at all
/// depths 0..depth (Eq. 4) and classify the average.
class S2gcHead : public DepthHead {
 public:
  S2gcHead(const ModelConfig& config, int depth, tensor::Rng& rng);

  tensor::Matrix Forward(const FeatureViews& views, bool train,
                         tensor::Rng* rng) override;
  void Backward(const tensor::Matrix& grad_logits) override;
  void CollectParameters(std::vector<nn::Parameter*>& params) override;
  std::int64_t ForwardMacs(std::int64_t rows) const override;
  std::size_t expected_views() const override { return depth_ + 1; }
  std::size_t num_classes() const override { return mlp_.out_dim(); }
  tensor::Matrix Reduce(const FeatureViews& views) override;
  const nn::Mlp& classifier_mlp() const override { return mlp_; }

 private:
  int depth_;
  std::size_t feature_dim_;
  nn::Mlp mlp_;
};

}  // namespace nai::models

#endif  // NAI_MODELS_S2GC_H_
