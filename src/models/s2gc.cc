#include "src/models/s2gc.h"

#include <cassert>

#include "src/tensor/ops.h"

namespace nai::models {

S2gcHead::S2gcHead(const ModelConfig& config, int depth, tensor::Rng& rng)
    : depth_(depth),
      feature_dim_(config.feature_dim),
      mlp_(config.feature_dim, config.hidden_dims, config.num_classes,
           config.dropout, rng) {}

tensor::Matrix S2gcHead::Forward(const FeatureViews& views, bool train,
                                 tensor::Rng* rng) {
  assert(views.size() == expected_views());
  const tensor::Matrix avg = tensor::Mean(views);
  return mlp_.Forward(avg, train, rng);
}

void S2gcHead::Backward(const tensor::Matrix& grad_logits) {
  mlp_.Backward(grad_logits);
}

void S2gcHead::CollectParameters(std::vector<nn::Parameter*>& params) {
  mlp_.CollectParameters(params);
}

std::int64_t S2gcHead::ForwardMacs(std::int64_t rows) const {
  // Averaging depth+1 views costs rows * (depth+1) * f adds — the paper's
  // "knf" term in Table I — counted here as MAC-equivalents, plus the MLP.
  return rows * static_cast<std::int64_t>(depth_ + 1) *
             static_cast<std::int64_t>(feature_dim_) +
         mlp_.ForwardMacs(rows);
}

}  // namespace nai::models

namespace nai::models {

tensor::Matrix S2gcHead::Reduce(const FeatureViews& views) {
  assert(views.size() == expected_views());
  return tensor::Mean(views);
}

}  // namespace nai::models
