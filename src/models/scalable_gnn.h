#ifndef NAI_MODELS_SCALABLE_GNN_H_
#define NAI_MODELS_SCALABLE_GNN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/nn/mlp.h"
#include "src/nn/parameter.h"
#include "src/tensor/matrix.h"
#include "src/tensor/random.h"

namespace nai::models {

/// Which Scalable GNN family a model instance belongss to (paper §II-C).
enum class ModelKind {
  kSgc,    ///< SGC: classify X^(k) directly (Eq. 2)
  kSign,   ///< SIGN: concatenate X^(0..k) (Eq. 3)
  kS2gc,   ///< S2GC: average X^(0..k) (Eq. 4)
  kGamlp,  ///< GAMLP: node-wise attention over X^(0..k) (Eq. 5)
};

std::string ModelKindName(ModelKind kind);

/// Views of the propagated-feature stack X^(0), ..., X^(l) restricted to the
/// rows being classified. views[t] is X^(t); all have equal shape (n x f).
using FeatureViews = std::vector<const tensor::Matrix*>;

/// A trainable classifier head reading the feature stack up to its depth.
/// Each Scalable GNN family defines how the stack is reduced to classifier
/// input (identity / concat / mean / attention). The NAI framework trains
/// one head per depth (the paper's f^(1..k)).
class DepthHead {
 public:
  virtual ~DepthHead() = default;

  /// Logits for the stack slice views = {X^(0), ..., X^(depth)}.
  /// `train` caches intermediates for Backward and enables dropout.
  virtual tensor::Matrix Forward(const FeatureViews& views, bool train,
                                 tensor::Rng* rng) = 0;

  /// Accumulates parameter gradients from dLoss/dLogits.
  virtual void Backward(const tensor::Matrix& grad_logits) = 0;

  virtual void CollectParameters(std::vector<nn::Parameter*>& params) = 0;

  /// Classification MACs for `rows` nodes (the "nf^2"-type terms of
  /// Table I; propagation MACs are counted by the inference engine).
  virtual std::int64_t ForwardMacs(std::int64_t rows) const = 0;

  /// Number of views this head expects (depth + 1).
  virtual std::size_t expected_views() const = 0;

  virtual std::size_t num_classes() const = 0;

  /// The family-specific stack reduction (identity / concat / mean /
  /// attention) without the MLP, in inference mode. Exposed so alternative
  /// classifier executors (e.g. the INT8-quantization baseline) can reuse
  /// the reduction and substitute their own final MLP.
  virtual tensor::Matrix Reduce(const FeatureViews& views) = 0;

  /// The float MLP that consumes Reduce()'s output.
  virtual const nn::Mlp& classifier_mlp() const = 0;
};

/// Model family descriptor + head factory. Holds no propagated state; the
/// propagation itself is a free function so that training-time (full graph)
/// and inference-time (batch subgraph) paths share it.
struct ModelConfig {
  ModelKind kind = ModelKind::kSgc;
  int depth = 3;                           ///< k, the maximum propagation depth
  float gamma = 0.5f;                      ///< convolution coefficient (Eq. 1)
  std::size_t feature_dim = 0;
  std::size_t num_classes = 0;
  std::vector<std::size_t> hidden_dims;    ///< classifier hidden layer sizes
  float dropout = 0.1f;
};

/// Creates the family-specific head for classifiers at `depth` (so it will
/// consume views X^(0..depth)).
std::unique_ptr<DepthHead> MakeHead(const ModelConfig& config, int depth,
                                    tensor::Rng& rng);

/// Computes the propagated feature stack {X^(0), X^(1), ..., X^(k)} over a
/// full graph: X^(t) = Â X^(t-1) (Eq. 2). Returns k+1 matrices.
std::vector<tensor::Matrix> PropagateStack(const graph::Csr& norm_adj,
                                           const tensor::Matrix& features,
                                           int depth);

}  // namespace nai::models

#endif  // NAI_MODELS_SCALABLE_GNN_H_
