#ifndef NAI_MODELS_SIGN_H_
#define NAI_MODELS_SIGN_H_

#include "src/models/scalable_gnn.h"
#include "src/nn/mlp.h"

namespace nai::models {

/// SIGN head (Frasca et al., 2020): concatenate the propagated features at
/// all depths 0..depth (Eq. 3) and classify the concatenation with an MLP.
///
/// The paper's per-depth linear transforms W^(0..l) followed by
/// concatenation are folded into the first MLP layer here: a Linear over
/// the concatenation is the same parameterization as the concatenation of
/// per-depth Linears, with strictly more general cross-terms.
class SignHead : public DepthHead {
 public:
  SignHead(const ModelConfig& config, int depth, tensor::Rng& rng);

  tensor::Matrix Forward(const FeatureViews& views, bool train,
                         tensor::Rng* rng) override;
  void Backward(const tensor::Matrix& grad_logits) override;
  void CollectParameters(std::vector<nn::Parameter*>& params) override;
  std::int64_t ForwardMacs(std::int64_t rows) const override;
  std::size_t expected_views() const override { return depth_ + 1; }
  std::size_t num_classes() const override { return mlp_.out_dim(); }
  tensor::Matrix Reduce(const FeatureViews& views) override;
  const nn::Mlp& classifier_mlp() const override { return mlp_; }

 private:
  int depth_;
  nn::Mlp mlp_;  // input dim = (depth + 1) * feature_dim
};

}  // namespace nai::models

#endif  // NAI_MODELS_SIGN_H_
