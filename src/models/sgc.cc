#include "src/models/sgc.h"

#include <cassert>

namespace nai::models {

SgcHead::SgcHead(const ModelConfig& config, int depth, tensor::Rng& rng)
    : depth_(depth),
      mlp_(config.feature_dim, config.hidden_dims, config.num_classes,
           config.dropout, rng) {}

tensor::Matrix SgcHead::Forward(const FeatureViews& views, bool train,
                                tensor::Rng* rng) {
  assert(views.size() == expected_views());
  return mlp_.Forward(*views.back(), train, rng);
}

void SgcHead::Backward(const tensor::Matrix& grad_logits) {
  mlp_.Backward(grad_logits);
}

void SgcHead::CollectParameters(std::vector<nn::Parameter*>& params) {
  mlp_.CollectParameters(params);
}

std::int64_t SgcHead::ForwardMacs(std::int64_t rows) const {
  return mlp_.ForwardMacs(rows);
}

}  // namespace nai::models

namespace nai::models {

tensor::Matrix SgcHead::Reduce(const FeatureViews& views) {
  assert(views.size() == expected_views());
  return *views.back();
}

}  // namespace nai::models
