#include "src/models/sign.h"

#include <cassert>

#include "src/tensor/ops.h"

namespace nai::models {

SignHead::SignHead(const ModelConfig& config, int depth, tensor::Rng& rng)
    : depth_(depth),
      mlp_(config.feature_dim * (depth + 1), config.hidden_dims,
           config.num_classes, config.dropout, rng) {}

tensor::Matrix SignHead::Forward(const FeatureViews& views, bool train,
                                 tensor::Rng* rng) {
  assert(views.size() == expected_views());
  const tensor::Matrix concat = tensor::ConcatCols(views);
  return mlp_.Forward(concat, train, rng);
}

void SignHead::Backward(const tensor::Matrix& grad_logits) {
  mlp_.Backward(grad_logits);
}

void SignHead::CollectParameters(std::vector<nn::Parameter*>& params) {
  mlp_.CollectParameters(params);
}

std::int64_t SignHead::ForwardMacs(std::int64_t rows) const {
  return mlp_.ForwardMacs(rows);
}

}  // namespace nai::models

namespace nai::models {

tensor::Matrix SignHead::Reduce(const FeatureViews& views) {
  assert(views.size() == expected_views());
  return tensor::ConcatCols(views);
}

}  // namespace nai::models
