#ifndef NAI_MODELS_SGC_H_
#define NAI_MODELS_SGC_H_

#include "src/models/scalable_gnn.h"
#include "src/nn/mlp.h"

namespace nai::models {

/// SGC head (Wu et al., 2019): classify the deepest propagated feature
/// X^(depth) with an MLP (a single Linear when hidden_dims is empty, which
/// is the original SGC's logistic regression).
class SgcHead : public DepthHead {
 public:
  SgcHead(const ModelConfig& config, int depth, tensor::Rng& rng);

  tensor::Matrix Forward(const FeatureViews& views, bool train,
                         tensor::Rng* rng) override;
  void Backward(const tensor::Matrix& grad_logits) override;
  void CollectParameters(std::vector<nn::Parameter*>& params) override;
  std::int64_t ForwardMacs(std::int64_t rows) const override;
  std::size_t expected_views() const override { return depth_ + 1; }
  std::size_t num_classes() const override { return mlp_.out_dim(); }
  tensor::Matrix Reduce(const FeatureViews& views) override;
  const nn::Mlp& classifier_mlp() const override { return mlp_; }

 private:
  int depth_;
  nn::Mlp mlp_;
};

}  // namespace nai::models

#endif  // NAI_MODELS_SGC_H_
