#include "src/models/scalable_gnn.h"

#include <cassert>

#include "src/models/gamlp.h"
#include "src/models/s2gc.h"
#include "src/models/sgc.h"
#include "src/models/sign.h"

namespace nai::models {

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kSgc:
      return "SGC";
    case ModelKind::kSign:
      return "SIGN";
    case ModelKind::kS2gc:
      return "S2GC";
    case ModelKind::kGamlp:
      return "GAMLP";
  }
  return "unknown";
}

std::unique_ptr<DepthHead> MakeHead(const ModelConfig& config, int depth,
                                    tensor::Rng& rng) {
  assert(depth >= 0 && depth <= config.depth);
  switch (config.kind) {
    case ModelKind::kSgc:
      return std::make_unique<SgcHead>(config, depth, rng);
    case ModelKind::kSign:
      return std::make_unique<SignHead>(config, depth, rng);
    case ModelKind::kS2gc:
      return std::make_unique<S2gcHead>(config, depth, rng);
    case ModelKind::kGamlp:
      return std::make_unique<GamlpHead>(config, depth, rng);
  }
  return nullptr;
}

std::vector<tensor::Matrix> PropagateStack(const graph::Csr& norm_adj,
                                           const tensor::Matrix& features,
                                           int depth) {
  assert(depth >= 0);
  assert(static_cast<std::int64_t>(features.rows()) == norm_adj.rows);
  std::vector<tensor::Matrix> stack;
  stack.reserve(depth + 1);
  stack.push_back(features);
  for (int t = 1; t <= depth; ++t) {
    stack.push_back(graph::SpMM(norm_adj, stack.back()));
  }
  return stack;
}

}  // namespace nai::models
