#!/usr/bin/env bash
# clang-format over the actively formatted subset of the tree: the serving
# and runtime layers plus the files the scheduler/CI PR touched. The rest
# of the tree is close to (but not byte-exact with) .clang-format, and a
# whole-tree reformat would bury real history — widen NAI_FORMAT_PATHS
# deliberately, one layer per PR.
#
# Usage:
#   scripts/format.sh          # rewrite files in place
#   scripts/format.sh --check  # fail (exit 1) if anything would change; CI
#
# When clang-format is not installed the script reports and exits 0: the
# formatting gate is enforced by the CI `format` job (which installs it),
# not silently re-implemented on machines without the tool.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-apply}"

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [ -z "${CLANG_FORMAT}" ]; then
  for candidate in clang-format clang-format-18 clang-format-17 \
                   clang-format-16 clang-format-15 clang-format-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANG_FORMAT="${candidate}"
      break
    fi
  done
fi
if [ -z "${CLANG_FORMAT}" ]; then
  echo "format.sh: clang-format not found; skipping (CI enforces this)"
  exit 0
fi

# The formatted subset: whole serving + runtime layers, plus the files the
# adaptive-scheduler / CI PR touched elsewhere in the tree. nullglob makes
# a group that stops matching a silent skip, not a fatal ls error.
shopt -s nullglob
FILES=(
  src/serve/*.h src/serve/*.cc
  src/runtime/*.h src/runtime/*.cc
  src/core/sharded_inference.h src/core/sharded_inference.cc
  bench/bench_serving_qos.cc
  examples/serve_streaming.cpp
  tests/serve/*.cc
  tests/runtime/*.cc
)
shopt -u nullglob
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "format.sh: no files matched the formatted subset" >&2
  exit 2
fi

case "${MODE}" in
  --check)
    echo "format.sh: checking ${#FILES[@]} files with ${CLANG_FORMAT}"
    # --dry-run --Werror: nonzero exit + a diff-style report per violation.
    "${CLANG_FORMAT}" --style=file --dry-run --Werror "${FILES[@]}"
    echo "format.sh: clean"
    ;;
  apply)
    echo "format.sh: formatting ${#FILES[@]} files with ${CLANG_FORMAT}"
    "${CLANG_FORMAT}" --style=file -i "${FILES[@]}"
    ;;
  *)
    echo "format.sh: unknown mode '${MODE}' (expected --check or nothing)" >&2
    exit 2
    ;;
esac
