#!/usr/bin/env bash
# The repo's quality gate, split into named stages so CI jobs and local
# runs invoke exactly the same commands:
#
#   release   Plain Release configure + build + full CTest run.
#   asan      Release + ASan/UBSan build, full CTest run, then a
#             NAI_THREADS=1 serial-path pass of the threading-sensitive
#             suites.
#   tsan      ThreadSanitizer configuration (separate build dir; TSan
#             cannot combine with ASan) for the runtime + engine + serving
#             + parallel-kernel suites.
#   format    clang-format check over the actively formatted subset
#             (scripts/format.sh --check).
#   docs      Dead-relative-link check over README.md and docs/.
#   bench     Exactness-gated serving bench smoke at a fixed load/mix;
#             writes BENCH_serving.json to the repo root (the CI perf
#             artifact).
#
# Usage:
#   scripts/check.sh                      # default gate: asan tsan format docs
#   NAI_CHECK_STAGE=tsan scripts/check.sh # one stage (mirrors the CI jobs)
#   NAI_CHECK_STAGE="release bench" scripts/check.sh   # any subset, in order
#   NAI_SANITIZE=""    scripts/check.sh   # disable the asan stage sanitizers
#   NAI_TSAN=0         scripts/check.sh   # drop tsan from the default gate
#   NAI_BUILD_DIR=foo  scripts/check.sh   # custom build directory prefix
#
# Every stage prints its wall-clock time; a failure names the stage that
# broke instead of dying on a bare `set -e` exit.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${NAI_BUILD_DIR:-build-check}"
SANITIZE="${NAI_SANITIZE-address,undefined}"
TSAN="${NAI_TSAN:-1}"
JOBS="$(nproc 2>/dev/null || echo 2)"

DEFAULT_STAGES="asan tsan format docs"
if [ "${TSAN}" = "0" ]; then
  DEFAULT_STAGES="asan format docs"
fi
STAGES="${NAI_CHECK_STAGE:-${DEFAULT_STAGES}}"

# ---------------------------------------------------------------------------
# Stage bodies. Each runs in a `set -euo pipefail` subshell via run_stage,
# so any failing command aborts just that stage with its name attached.
# ---------------------------------------------------------------------------

stage_release() {
  cmake -B "${BUILD_DIR}-release" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${BUILD_DIR}-release" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}-release" --output-on-failure -j "${JOBS}"
}

stage_asan() {
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DNAI_SANITIZE="${SANITIZE}"
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
  # Serial-path pass: the same parallel-sensitive suites with a 1-thread
  # pool (the sharded engine then runs one worker per shard pool), once per
  # SIMD dispatch level — NAI_SIMD=scalar pins the reference kernels, the
  # unset run takes the host's best vector path — so sanitizers sweep both
  # sides of every kernel dispatch.
  for simd in scalar ""; do
    NAI_SIMD="${simd}" NAI_THREADS=1 ctest --test-dir "${BUILD_DIR}" \
      --output-on-failure -j "${JOBS}" \
      -R 'runtime/|tensor/ops|tensor/kernel_parity|tensor/simd_dispatch|graph/csr|graph/shard|graph/delta|core/inference|core/sharded|serve/|storage/|integration/algorithm1'
  done
}

stage_tsan() {
  # Runtime + engine + serving + parallel kernels only: the other suites
  # are single-threaded, and building everything under TSan doubles CI
  # time for no coverage.
  local tsan_dir="${BUILD_DIR}-tsan"
  cmake -B "${tsan_dir}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DNAI_SANITIZE=thread \
    -DNAI_BUILD_BENCH=OFF \
    -DNAI_BUILD_EXAMPLES=OFF
  cmake --build "${tsan_dir}" -j "${JOBS}" --target \
    runtime_thread_pool_test tensor_ops_test tensor_kernel_parity_test \
    tensor_simd_dispatch_test graph_csr_test \
    core_inference_test core_inference_edge_test \
    core_inference_parallel_test core_inference_simd_test \
    core_sharded_inference_test \
    graph_shard_test graph_delta_test serve_request_queue_test \
    serve_batcher_test serve_scheduler_test serve_serving_engine_test \
    serve_result_cache_test serve_snapshot_swap_test \
    storage_store_test storage_mmap_engine_test
  ctest --test-dir "${tsan_dir}" --output-on-failure -j "${JOBS}" \
    -R 'runtime/thread_pool|tensor/ops|tensor/kernel_parity|tensor/simd_dispatch|graph/csr|graph/shard|graph/delta|core/inference|core/sharded|serve/|storage/'
}

stage_format() {
  scripts/format.sh --check
}

stage_docs() {
  scripts/check_docs_links.sh
}

stage_bench() {
  # Fixed load/mix smoke: exactness-gated (nonzero exit on any prediction
  # divergence, including down the steal path, plus the throughput class's
  # int8 accuracy-delta budget) and the source of the BENCH_serving.json
  # perf trajectory at the repo root. bench_update_churn and bench_kernels
  # run after bench_serving_qos: each splices its section ("update_churn",
  # "kernels") into the artifact it just wrote fresh. bench_kernels also
  # enforces the scalar-vs-SIMD MatMul speedup gate on vector hosts.
  cmake -B "${BUILD_DIR}-release" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "${BUILD_DIR}-release" -j "${JOBS}" \
    --target bench_serving_qos bench_update_churn bench_kernels \
    bench_outofcore
  NAI_SCALE="${NAI_BENCH_SCALE:-0.1}" "${BUILD_DIR}-release/bench_serving_qos" \
    --shards 2 --threads 2 --qos 50 --json BENCH_serving.json
  NAI_SCALE="${NAI_BENCH_SCALE:-0.1}" "${BUILD_DIR}-release/bench_update_churn" \
    --shards 2 --threads 2 --json BENCH_serving.json
  "${BUILD_DIR}-release/bench_kernels" --threads 2 --json BENCH_serving.json
  echo "bench smoke wrote $(pwd)/BENCH_serving.json"
  # Out-of-core smoke: the mem-vs-mmap exactness gate at full strength plus
  # a capped scaled sweep (NAI_SCALE shrinks the graph sizes; --requests
  # bounds the Zipf load) writing the BENCH_outofcore.json artifact.
  NAI_SCALE="${NAI_BENCH_SCALE:-0.02}" "${BUILD_DIR}-release/bench_outofcore" \
    --threads 2 --requests 4000 --json BENCH_outofcore.json
  echo "out-of-core smoke wrote $(pwd)/BENCH_outofcore.json"
}

run_stage() {
  local name="$1"
  local start="${SECONDS}"
  echo "=== check.sh stage: ${name} ==="
  if ! (set -euo pipefail; "stage_${name}"); then
    echo "check.sh: FAILED in stage '${name}' after $((SECONDS - start))s" >&2
    exit 1
  fi
  echo "=== check.sh stage: ${name} ok in $((SECONDS - start))s ==="
}

TOTAL_START="${SECONDS}"
for stage in ${STAGES}; do
  case "${stage}" in
    release|asan|tsan|format|docs|bench) run_stage "${stage}" ;;
    *)
      echo "check.sh: unknown stage '${stage}' (expected release|asan|tsan|format|docs|bench)" >&2
      exit 2
      ;;
  esac
done
echo "check.sh: all stages (${STAGES}) passed in $((SECONDS - TOTAL_START))s"
