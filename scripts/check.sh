#!/usr/bin/env bash
# CI gate, three stages:
#   1. configure (Release + ASan/UBSan), build everything, run every CTest
#      suite — then re-run the threading-sensitive suites with NAI_THREADS=1
#      so the pool's inline/serial path stays exercised.
#   2. a ThreadSanitizer configuration (separate build dir; TSan cannot be
#      combined with ASan) building and running the runtime + engine +
#      serving + parallel-kernel suites.
#   3. a docs-link check (dead relative links in README.md / docs/ fail).
# Exits nonzero on any configure/build/test/link failure.
#
# Usage:
#   scripts/check.sh             # full gate
#   NAI_SANITIZE=""    scripts/check.sh   # disable ASan/UBSan stage sanitizers
#   NAI_TSAN=0         scripts/check.sh   # skip the ThreadSanitizer stage
#   NAI_BUILD_DIR=foo  scripts/check.sh   # custom build directory
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${NAI_BUILD_DIR:-build-check}"
SANITIZE="${NAI_SANITIZE-address,undefined}"
TSAN="${NAI_TSAN:-1}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNAI_SANITIZE="${SANITIZE}"

cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# Serial-path pass: the same parallel-sensitive suites with a 1-thread pool
# (the sharded engine then runs one worker per shard pool).
NAI_THREADS=1 ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" \
  -R 'runtime/|tensor/ops|graph/csr|graph/shard|core/inference|core/sharded|serve/|integration/algorithm1'

# ThreadSanitizer stage: runtime + engine + parallel kernels only (the other
# suites are single-threaded; building everything under TSan doubles CI time
# for no coverage).
if [ "${TSAN}" != "0" ]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "${TSAN_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Release \
    -DNAI_SANITIZE=thread \
    -DNAI_BUILD_BENCH=OFF \
    -DNAI_BUILD_EXAMPLES=OFF
  cmake --build "${TSAN_DIR}" -j "${JOBS}" --target \
    runtime_thread_pool_test tensor_ops_test graph_csr_test \
    core_inference_test core_inference_edge_test \
    core_inference_parallel_test core_sharded_inference_test \
    graph_shard_test serve_request_queue_test serve_batcher_test \
    serve_serving_engine_test
  ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}" \
    -R 'runtime/thread_pool|tensor/ops|graph/csr|graph/shard|core/inference|core/sharded|serve/'
fi

# Docs stage: every relative link in README.md and docs/ must resolve.
scripts/check_docs_links.sh
