#!/usr/bin/env bash
# CI gate: configure (Release + ASan/UBSan), build everything, run every
# CTest suite. Exits nonzero on any configure/build/test failure.
#
# Usage:
#   scripts/check.sh             # sanitized Release build into build-check/
#   NAI_SANITIZE=""    scripts/check.sh   # disable sanitizers
#   NAI_BUILD_DIR=foo  scripts/check.sh   # custom build directory
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${NAI_BUILD_DIR:-build-check}"
SANITIZE="${NAI_SANITIZE-address,undefined}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DNAI_SANITIZE="${SANITIZE}"

cmake --build "${BUILD_DIR}" -j "${JOBS}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
