#!/usr/bin/env bash
# Docs-link checker: fails on dead *relative* links in README.md and every
# docs/*.md file. A link is checked when it is a markdown inline link
# [text](target) whose target is not an absolute URL (scheme://... or
# mailto:) and not a pure in-page anchor (#...). Anchors on relative links
# are stripped before the existence check; targets resolve against the
# directory of the file containing the link.
#
# Fenced code blocks (``` ... ```) are skipped — C++ lambdas like
# `[](const T&)` would otherwise parse as links.
#
# Usage: scripts/check_docs_links.sh   (exits nonzero listing dead links)
set -euo pipefail

cd "$(dirname "$0")/.."

files=(README.md)
if [ -d docs ]; then
  while IFS= read -r f; do files+=("$f"); done < <(find docs -name '*.md' | sort)
fi

dead=0
for file in "${files[@]}"; do
  dir="$(dirname "$file")"
  # Pull every inline-link target out of the file. The grep intentionally
  # stops at the first ')' so "[a](x) [b](y)" yields both targets.
  while IFS= read -r target; do
    case "$target" in
      ''|'#'*|*'://'*|mailto:*) continue ;;
    esac
    path="${target%%#*}"           # strip an anchor suffix
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "DEAD LINK: $file -> $target"
      dead=1
    fi
  done < <(awk '/^[[:space:]]*```/ { in_code = !in_code; next } !in_code' \
               "$file" \
             | grep -o '\[[^]]*\]([^)]*)' 2>/dev/null \
             | sed 's/^\[[^]]*\](\([^)]*\))$/\1/' || true)
done

if [ "$dead" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK (${#files[@]} files)"
