// Latency tuning: how the two global knobs of NAI — the distance threshold
// T_s and the depth window [T_min, T_max] — trade accuracy for speed
// (paper §III-A-3). Sweeps both knobs on unseen nodes and prints the
// frontier, plus the same sweep for the gate-based variant via its
// decision-bias extension.

#include <cstdio>

#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/runtime/flags.h"

int main(int argc, char** argv) {
  using namespace nai;
  runtime::ApplyThreadsFlag(argc, argv);  // shared --threads flag (or NAI_THREADS)
  runtime::ApplyStoreFlag(argc, argv);    // --store mem|mmap (or NAI_STORE)

  const eval::PreparedDataset ds = eval::Prepare(eval::ArxivSim(0.4));
  eval::PipelineConfig config;
  config.distill.base_epochs = 100;
  config.distill.single_epochs = 60;
  config.distill.multi_epochs = 40;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, config);
  auto engine = eval::MakeEngine(pipeline, ds);
  const int k = pipeline.classifiers->depth();

  // Reference point: fixed-depth vanilla inference.
  const eval::MethodResult vanilla =
      eval::RunVanilla(*engine, ds, ds.split.test_nodes, 500, "vanilla");
  std::printf("vanilla (k=%d): ACC %.2f%%  %.1f ms\n\n", k,
              vanilla.row.accuracy * 100, vanilla.row.time_ms);

  // Knob 1: the distance threshold T_s at fixed T_max = k.
  // Calibrate candidate values from the validation distance distribution.
  const auto base =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  std::printf("T_s sweep (T_max = %d):\n", k);
  for (const float scale : {0.25f, 0.5f, 1.0f, 2.0f, 4.0f}) {
    core::InferenceConfig cfg = base[2].config;  // accuracy-first template
    cfg.threshold *= scale / 1.0f;
    cfg.t_max = k;
    cfg.batch_size = 500;
    const auto r = eval::RunNai(*engine, ds, ds.split.test_nodes, cfg, "");
    std::printf("  T_s=%.4f  ACC %.2f%%  %.1f ms  avg depth %.2f\n",
                cfg.threshold, r.row.accuracy * 100, r.row.time_ms,
                r.stats.average_depth());
  }

  // Knob 2: the depth window, with a fixed mid threshold.
  std::printf("\n[T_min, T_max] sweep:\n");
  for (int t_max = 1; t_max <= k; ++t_max) {
    core::InferenceConfig cfg = base[1].config;
    cfg.t_min = 1;
    cfg.t_max = t_max;
    cfg.batch_size = 500;
    const auto r = eval::RunNai(*engine, ds, ds.split.test_nodes, cfg, "");
    std::printf("  T_max=%d  ACC %.2f%%  %.1f ms  avg depth %.2f\n", t_max,
                r.row.accuracy * 100, r.row.time_ms,
                r.stats.average_depth());
  }

  // Extension knob: NAPg decision bias shifts the stop/continue boundary
  // of the trained gates without retraining (0 = the paper's behavior).
  std::printf("\nNAPg decision-bias sweep:\n");
  for (const float bias : {-0.2f, 0.0f, 0.2f}) {
    core::InferenceConfig cfg;
    cfg.nap = core::NapKind::kGate;
    cfg.gate_bias = bias;
    cfg.t_max = k;
    cfg.batch_size = 500;
    const auto r = eval::RunNai(*engine, ds, ds.split.test_nodes, cfg, "");
    std::printf("  bias=%+.1f  ACC %.2f%%  %.1f ms  avg depth %.2f\n", bias,
                r.row.accuracy * 100, r.row.time_ms,
                r.stats.average_depth());
  }

  // Serving knob: independent batches executed concurrently on the runtime
  // pool. Predictions and exit depths are bit-identical to the serial run;
  // only wall-clock changes (with the pool's thread count).
  std::printf("\ninter-batch parallelism (threads=%d):\n",
              engine->exec_context().num_threads());
  core::InferenceConfig serial_cfg = base[1].config;
  serial_cfg.batch_size = 200;
  const auto serial = eval::RunNai(*engine, ds, ds.split.test_nodes,
                                   serial_cfg, "");
  core::InferenceConfig par_cfg = serial_cfg;
  par_cfg.inter_batch_parallelism = 0;  // one shard per pool thread
  const auto par = eval::RunNai(*engine, ds, ds.split.test_nodes, par_cfg, "");
  std::printf("  serial  : ACC %.2f%%  avg depth %.2f\n",
              serial.row.accuracy * 100, serial.stats.average_depth());
  std::printf("  parallel: ACC %.2f%%  avg depth %.2f  (predictions %s)\n",
              par.row.accuracy * 100, par.stats.average_depth(),
              par.predictions == serial.predictions ? "identical" : "DIFFER");
  return 0;
}
