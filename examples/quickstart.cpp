// Quickstart: the minimal end-to-end NAI workflow on a generated graph.
//
//   1. build a graph + features,
//   2. split inductively (test nodes unseen at training time),
//   3. train the classifier bank with Inception Distillation,
//   4. deploy the NAI engine and classify unseen nodes with
//      node-adaptive propagation depth.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/runtime/flags.h"

int main(int argc, char** argv) {
  using namespace nai;
  runtime::ApplyThreadsFlag(argc, argv);  // shared --threads flag (or NAI_THREADS)
  runtime::ApplyStoreFlag(argc, argv);    // --store mem|mmap (or NAI_STORE)

  // 1-2. A small dataset with the inductive split already prepared.
  //      (Real deployments construct graph::Graph from their own edges and
  //      a tensor::Matrix of node features; see src/graph/graph.h.)
  eval::DatasetSpec spec = eval::ArxivSim(0.2);
  const eval::PreparedDataset ds = eval::Prepare(spec);
  std::printf("graph: %lld nodes, %lld edges, %zu features, %d classes\n",
              static_cast<long long>(ds.data.graph.num_nodes()),
              static_cast<long long>(ds.data.graph.num_edges()),
              ds.data.features.cols(), ds.data.num_classes);
  std::printf("inductive split: %zu train / %zu unseen test nodes\n",
              ds.split.train_nodes.size(), ds.split.test_nodes.size());

  // 3. Train: offline propagation on the training graph, per-depth
  //    classifiers f^(1..k), Inception Distillation, and the NAPg gates.
  eval::PipelineConfig config;
  config.kind = models::ModelKind::kSgc;
  config.distill.base_epochs = 100;
  config.distill.single_epochs = 60;
  config.distill.multi_epochs = 40;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, config);
  std::printf("trained %d classifiers (k = %d)\n",
              pipeline.classifiers->depth(), pipeline.classifiers->depth());

  // 4. Deploy: the engine propagates online over the full graph, exiting
  //    each node as soon as its feature is smooth enough (NAPd).
  auto engine = eval::MakeEngine(pipeline, ds);
  const auto settings =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);

  const eval::MethodResult vanilla =
      eval::RunVanilla(*engine, ds, ds.split.test_nodes, 500, "vanilla SGC");
  std::printf("\nvanilla  : ACC %.2f%%  time %.1f ms  %.2f mMACs/node\n",
              vanilla.row.accuracy * 100, vanilla.row.time_ms,
              vanilla.row.mmacs_per_node);

  core::InferenceConfig fast = settings[0].config;  // speed-first
  fast.batch_size = 500;
  const eval::MethodResult nai =
      eval::RunNai(*engine, ds, ds.split.test_nodes, fast, "NAI");
  std::printf("NAI      : ACC %.2f%%  time %.1f ms  %.2f mMACs/node  "
              "(avg depth %.2f)\n",
              nai.row.accuracy * 100, nai.row.time_ms,
              nai.row.mmacs_per_node, nai.stats.average_depth());
  std::printf("speedup  : %.1fx time, %.1fx MACs, accuracy gap %+.2f pts\n",
              vanilla.row.time_ms / nai.row.time_ms,
              vanilla.row.mmacs_per_node / nai.row.mmacs_per_node,
              (nai.row.accuracy - vanilla.row.accuracy) * 100);
  return 0;
}
