// Streaming-session recommendation (paper §I): a user-item interaction
// graph where new sessions (unseen nodes) must be categorized in real time.
// Demonstrates the paper's deployment workflow — pick the NAI operating
// point from the validation set under an explicit latency budget, then
// serve the unseen test sessions with it.

#include <cstdio>
#include <vector>

#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/runtime/flags.h"

int main(int argc, char** argv) {
  using namespace nai;
  runtime::ApplyThreadsFlag(argc, argv);  // shared --threads flag (or NAI_THREADS)
  runtime::ApplyStoreFlag(argc, argv);    // --store mem|mmap (or NAI_STORE)

  const eval::PreparedDataset ds = eval::Prepare(eval::FlickrSim(0.5));
  std::printf("interaction graph: %lld nodes, %lld edges; %zu live "
              "sessions to categorize\n",
              static_cast<long long>(ds.data.graph.num_nodes()),
              static_cast<long long>(ds.data.graph.num_edges()),
              ds.split.test_nodes.size());

  eval::PipelineConfig config;
  config.distill.base_epochs = 100;
  config.distill.single_epochs = 60;
  config.distill.multi_epochs = 40;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, config);
  auto engine = eval::MakeEngine(pipeline, ds);

  // Offline: measure each candidate setting on the validation nodes and
  // keep the most accurate one whose latency fits the budget.
  const double kBudgetMsPerNode = 0.05;
  const auto settings =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  std::printf("\nvalidation sweep (budget: %.3f ms/session):\n",
              kBudgetMsPerNode);
  int chosen = -1;
  float chosen_acc = -1.0f;
  for (std::size_t i = 0; i < settings.size(); ++i) {
    core::InferenceConfig cfg = settings[i].config;
    cfg.batch_size = 500;
    const eval::MethodResult r =
        eval::RunNai(*engine, ds, ds.split.val_nodes, cfg, settings[i].name);
    const double ms_per_node = r.row.time_ms / ds.split.val_nodes.size();
    const bool fits = ms_per_node <= kBudgetMsPerNode;
    std::printf("  %s: ACC %.2f%%  %.4f ms/session  %s\n",
                settings[i].name.c_str(), r.row.accuracy * 100, ms_per_node,
                fits ? "fits budget" : "over budget");
    if (fits && r.row.accuracy > chosen_acc) {
      chosen = static_cast<int>(i);
      chosen_acc = r.row.accuracy;
    }
  }
  if (chosen < 0) {
    std::printf("no setting fits the budget; falling back to speed-first\n");
    chosen = 0;
  }

  // Online: serve the unseen sessions with the selected operating point.
  core::InferenceConfig cfg = settings[chosen].config;
  cfg.batch_size = 500;
  const eval::MethodResult live =
      eval::RunNai(*engine, ds, ds.split.test_nodes, cfg, "live");
  std::printf("\nserving with %s: ACC %.2f%%, %.4f ms/session, "
              "avg propagation depth %.2f\n",
              settings[chosen].name.c_str(), live.row.accuracy * 100,
              live.row.time_ms / ds.split.test_nodes.size(),
              live.stats.average_depth());
  eval::PrintNodeDistribution("depth mix", live.stats);
  return 0;
}
