// End-to-end deployment round trip through the io module: export a graph
// to plain-text files (the format a user's own data would arrive in), load
// it back, train, checkpoint the trained model to disk, reload it in a
// "fresh serving process", and verify the restored deployment predicts
// identically.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/core/sharded_inference.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/graph/shard.h"
#include "src/io/checkpoint.h"
#include "src/io/graph_io.h"
#include "src/runtime/flags.h"

int main(int argc, char** argv) {
  using namespace nai;
  runtime::ApplyThreadsFlag(argc, argv);  // shared --threads flag (or NAI_THREADS)
  const int num_shards = runtime::ShardsFlag(argc, argv);  // --shards N (default 1)
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "nai_example";
  fs::create_directories(dir);

  // --- Export a dataset to the plain-text formats. -------------------------
  const eval::PreparedDataset ds = eval::Prepare(eval::ArxivSim(0.15));
  {
    std::ofstream edges(dir / "graph.edges");
    io::WriteEdgeList(edges, ds.data.graph);
    std::ofstream feats(dir / "features.txt");
    io::WriteFeatures(feats, ds.data.features);
    std::ofstream labels(dir / "labels.txt");
    io::WriteLabels(labels, ds.data.labels);
  }
  std::printf("exported graph to %s\n", dir.c_str());

  // --- A user would start here: load their own files. ----------------------
  const graph::Graph graph = io::ReadEdgeListFile((dir / "graph.edges").string(),
                                                  ds.data.graph.num_nodes());
  const tensor::Matrix features =
      io::ReadFeaturesFile((dir / "features.txt").string());
  const std::vector<std::int32_t> labels =
      io::ReadLabelsFile((dir / "labels.txt").string());
  std::printf("loaded %lld nodes / %lld edges / %zu-dim features\n",
              static_cast<long long>(graph.num_nodes()),
              static_cast<long long>(graph.num_edges()), features.cols());

  // --- Train and checkpoint. -----------------------------------------------
  eval::PipelineConfig config;
  config.distill.base_epochs = 80;
  config.distill.single_epochs = 50;
  config.distill.multi_epochs = 30;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, config);
  {
    std::ofstream cls(dir / "classifiers.nai", std::ios::binary);
    io::SaveClassifierStack(cls, *pipeline.classifiers);
    std::ofstream st(dir / "stationary.nai", std::ios::binary);
    io::SaveStationaryState(st, *pipeline.full_stationary);
    std::ofstream gt(dir / "gates.nai", std::ios::binary);
    io::SaveGateStack(gt, *pipeline.gates);
  }
  std::printf("checkpointed classifiers + stationary state + gates\n");

  // --- "Fresh serving process": reload and serve. --------------------------
  core::ClassifierStack restored_cls(pipeline.model_config, /*seed=*/0);
  {
    std::ifstream cls(dir / "classifiers.nai", std::ios::binary);
    io::LoadClassifierStack(cls, restored_cls);
  }
  std::ifstream st(dir / "stationary.nai", std::ios::binary);
  core::StationaryState restored_st = io::LoadStationaryState(st, graph);
  core::GateStack restored_gates(pipeline.model_config.depth,
                                 pipeline.model_config.feature_dim, 0);
  {
    std::ifstream gt(dir / "gates.nai", std::ios::binary);
    io::LoadGateStack(gt, restored_gates);
  }

  core::NaiEngine original(ds.data.graph, ds.data.features,
                           pipeline.model_config.gamma,
                           *pipeline.classifiers,
                           pipeline.full_stationary.get(),
                           pipeline.gates.get());
  core::NaiEngine restored(graph, features, pipeline.model_config.gamma,
                           restored_cls, &restored_st, &restored_gates);

  core::InferenceConfig icfg;
  icfg.nap = core::NapKind::kGate;
  const auto a = original.Infer(ds.split.test_nodes, icfg);
  const auto b = restored.Infer(ds.split.test_nodes, icfg);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    if (a.predictions[i] == b.predictions[i]) ++agree;
  }
  std::printf("restored deployment agrees on %zu / %zu predictions (%s)\n",
              agree, a.predictions.size(),
              agree == a.predictions.size() ? "exact" : "MISMATCH");
  std::printf("accuracy on unseen nodes: %.2f%%\n",
              100.0f * eval::AccuracyOnNodes(b.predictions, labels,
                                             ds.split.test_nodes));

  // --- Optional: shard the restored deployment (--shards N). ---------------
  // The same checkpointed artifacts serve from a partitioned graph: each
  // shard holds an induced subgraph with a k-hop halo and its own thread
  // pool, and the merged predictions must stay bit-identical.
  std::size_t sharded_agree = a.predictions.size();
  if (num_shards > 1) {
    core::ShardedNaiEngine sharded(
        graph, graph::MakeShards(graph, num_shards,
                                 pipeline.model_config.depth),
        features, pipeline.model_config.gamma, restored_cls, &restored_st,
        &restored_gates);
    const auto c = sharded.Infer(ds.split.test_nodes, icfg);
    sharded_agree = 0;
    for (std::size_t i = 0; i < a.predictions.size(); ++i) {
      if (a.predictions[i] == c.predictions[i]) ++sharded_agree;
    }
    std::printf("%d-shard serving agrees on %zu / %zu predictions (%s)\n",
                num_shards, sharded_agree, a.predictions.size(),
                sharded_agree == a.predictions.size() ? "exact" : "MISMATCH");
  }
  return agree == a.predictions.size() &&
                 sharded_agree == a.predictions.size()
             ? 0
             : 1;
}
