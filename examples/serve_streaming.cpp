// Streaming serving walkthrough: stand up the src/serve/ front-end over a
// sharded deployment and push one-at-a-time queries through it — first a
// handful of callback-completed requests (the "online API" shape), then a
// mixed-QoS burst through futures, finishing with the serving stats
// snapshot (including the adaptive scheduler's steal/shed counters and
// adaptation trace) and a bit-exactness self-check against direct Infer.
//
// Flags: --threads N (pool size), --shards N (default 2 here — the
// front-end pumps one admission queue per shard, and the idle pump can
// steal the other's backlog).

#include <cstdio>
#include <future>
#include <vector>

#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/runtime/flags.h"
#include "src/serve/serving_engine.h"

int main(int argc, char** argv) {
  using namespace nai;
  runtime::ApplyThreadsFlag(argc, argv);
  int num_shards = runtime::ShardsFlag(argc, argv);
  if (num_shards <= 1) num_shards = 2;  // the example's point is per-shard queues

  // --- Train a small deployment and wrap it for serving. -------------------
  const eval::PreparedDataset ds = eval::Prepare(eval::ArxivSim(0.15));
  eval::PipelineConfig config;
  config.distill.base_epochs = 80;
  config.distill.single_epochs = 50;
  config.distill.multi_epochs = 30;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, config);
  auto sharded = eval::MakeShardedEngine(pipeline, ds, num_shards);
  const serve::QosPolicyTable policies =
      eval::MakeQosPolicyTable(pipeline, ds, core::NapKind::kDistance);

  serve::ServingOptions options;
  options.batcher.max_batch = 32;
  options.batcher.max_wait_us = 500;
  // The adaptive scheduler defaults on; spelled out here as the knobs a
  // deployment would tune. Speed-first bypasses queued accuracy-first work
  // (bounded at 5ms of bypassing), idle shard pumps steal backlogged
  // batches, and the admission controller retunes the 500us window to the
  // observed arrival rate within [0, 2ms].
  options.scheduler.priority = true;
  options.scheduler.priority_aging_us = 5000;
  options.scheduler.stealing = true;
  options.scheduler.adaptive = true;
  serve::ServingEngine server(*sharded, policies, options);
  std::printf("serving %lld nodes from %d shards "
              "(speed-first: T_max %d, %.0f ms budget | accuracy-first: "
              "full depth, %.0f ms budget)\n",
              static_cast<long long>(ds.data.graph.num_nodes()), num_shards,
              policies.For(serve::QosClass::kSpeedFirst).config.t_max,
              policies.For(serve::QosClass::kSpeedFirst).default_deadline_ms,
              policies.For(serve::QosClass::kAccuracyFirst)
                  .default_deadline_ms);

  // --- A few single streaming requests, completed via callbacks. -----------
  std::printf("\nstreaming requests (callback completion):\n");
  std::vector<std::future<void>> done;
  for (std::size_t i = 0; i < 4 && i < ds.split.test_nodes.size(); ++i) {
    const std::int32_t node = ds.split.test_nodes[i];
    const serve::QosClass qos = i % 2 == 0
                                    ? serve::QosClass::kSpeedFirst
                                    : serve::QosClass::kAccuracyFirst;
    auto signal = std::make_shared<std::promise<void>>();
    done.push_back(signal->get_future());
    server.SubmitWithCallback(
        node, qos, [node, qos, signal](const serve::Response& r) {
          std::printf("  node %-6d %-15s -> class %d at depth %d in %.2f ms"
                      " (%.2f ms queued)%s\n",
                      node, serve::QosClassName(qos), r.prediction,
                      r.exit_depth, r.latency_ms, r.queue_ms,
                      r.deadline_missed ? "  [deadline missed]" : "");
          signal->set_value();
        });
  }
  for (std::future<void>& f : done) f.wait();

  // --- A mixed burst through futures. --------------------------------------
  const std::vector<std::int32_t>& test = ds.split.test_nodes;
  std::vector<serve::QosClass> classes(test.size());
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    classes[i] = i % 2 == 0 ? serve::QosClass::kSpeedFirst
                            : serve::QosClass::kAccuracyFirst;
    futures.push_back(server.Submit(test[i], classes[i]));
  }
  std::vector<serve::Response> responses;
  responses.reserve(futures.size());
  for (std::future<serve::Response>& f : futures) {
    responses.push_back(f.get());
  }

  // --- Self-check: serving must match direct inference bit-for-bit. --------
  const core::InferenceResult ref_speed =
      sharded->Infer(test, policies.For(serve::QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = sharded->Infer(
      test, policies.For(serve::QosClass::kAccuracyFirst).config);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const core::InferenceResult& ref =
        classes[i] == serve::QosClass::kSpeedFirst ? ref_speed : ref_accuracy;
    if (responses[i].served && responses[i].prediction == ref.predictions[i] &&
        responses[i].exit_depth == ref.exit_depths[i]) {
      ++agree;
    }
  }
  std::printf("\nburst of %zu mixed-QoS requests: %zu / %zu bit-identical "
              "to direct Infer (%s)\n",
              test.size(), agree, test.size(),
              agree == test.size() ? "exact" : "MISMATCH");

  const serve::ServingStatsSnapshot stats = server.Stats();
  std::printf("\nserving stats: %lld completed, %lld deadline misses, "
              "mean batch %.1f over %lld batches\n",
              static_cast<long long>(stats.completed),
              static_cast<long long>(stats.deadline_misses),
              stats.mean_batch_size,
              static_cast<long long>(stats.num_batches));
  std::printf("  overall  p50 %.2f ms   p95 %.2f ms   p99 %.2f ms\n",
              stats.latency.p50_ms, stats.latency.p95_ms,
              stats.latency.p99_ms);
  for (std::size_t c = 0; c < serve::kNumQosClasses; ++c) {
    std::printf("  %-15s p50 %.2f ms   p95 %.2f ms   p99 %.2f ms "
                "(%lld served)\n",
                serve::QosClassName(static_cast<serve::QosClass>(c)),
                stats.per_class[c].p50_ms, stats.per_class[c].p95_ms,
                stats.per_class[c].p99_ms,
                static_cast<long long>(stats.per_class[c].count));
  }

  // What the scheduler did: cross-shard steals, controller sheds, and the
  // per-shard adaptation state the controller converged to.
  std::printf("\nscheduler: %lld batches stolen (%lld requests, %lld via "
              "owner fallback), %lld adaptive sheds\n",
              static_cast<long long>(stats.stolen_batches),
              static_cast<long long>(stats.stolen_requests),
              static_cast<long long>(stats.steal_fallback_requests),
              static_cast<long long>(stats.shed_adaptive));
  for (const serve::SchedulerShardSnapshot& shard : stats.scheduler) {
    std::printf("  shard %zu: arrival %.0f q/s, service %.0f q/s, window "
                "%lld us, stolen by/from %lld/%lld\n",
                shard.shard, shard.arrival_qps, shard.service_qps,
                static_cast<long long>(shard.batch_wait_us),
                static_cast<long long>(shard.batches_stolen_by),
                static_cast<long long>(shard.batches_stolen_from));
  }
  if (!stats.adaptation_trace.empty()) {
    const serve::SchedulerTraceEvent& last = stats.adaptation_trace.back();
    std::printf("  adaptation trace: %zu events, last at %.1f ms (shard "
                "%zu -> window %lld us)\n",
                stats.adaptation_trace.size(), last.t_ms, last.shard,
                static_cast<long long>(last.batch_wait_us));
  }

  server.Shutdown();
  return agree == test.size() ? 0 : 1;
}
