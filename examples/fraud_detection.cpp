// Fraud detection on a transaction graph — the paper's millisecond-latency
// motivation (§I). New accounts arrive continuously; each must be scored
// against the existing account graph within a latency budget. This example
// streams unseen nodes through the NAI engine in small batches and reports
// per-batch latency percentiles for the vanilla model versus NAI.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/runtime/flags.h"

namespace {

using namespace nai;

struct LatencyStats {
  double p50 = 0.0, p95 = 0.0, max = 0.0;
  float accuracy = 0.0f;
};

LatencyStats Stream(core::NaiEngine& engine, const eval::PreparedDataset& ds,
                    const core::InferenceConfig& config,
                    std::size_t batch_size) {
  std::vector<double> latencies;
  std::size_t correct = 0, total = 0;
  const auto& nodes = ds.split.test_nodes;
  for (std::size_t begin = 0; begin < nodes.size(); begin += batch_size) {
    const std::size_t end = std::min(nodes.size(), begin + batch_size);
    const std::vector<std::int32_t> batch(nodes.begin() + begin,
                                          nodes.begin() + end);
    eval::Timer timer;
    core::InferenceConfig cfg = config;
    cfg.batch_size = batch.size();
    const core::InferenceResult r = engine.Infer(batch, cfg);
    latencies.push_back(timer.ElapsedMs());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (r.predictions[i] == ds.data.labels[batch[i]]) ++correct;
      ++total;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  LatencyStats out;
  out.p50 = latencies[latencies.size() / 2];
  out.p95 = latencies[latencies.size() * 95 / 100];
  out.max = latencies.back();
  out.accuracy = static_cast<float>(correct) / static_cast<float>(total);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nai;
  runtime::ApplyThreadsFlag(argc, argv);  // shared --threads flag (or NAI_THREADS)
  runtime::ApplyStoreFlag(argc, argv);    // --store mem|mmap (or NAI_STORE)
  // The "account graph": heavy-tailed degrees like a payments network.
  // Suspicious-account class = one of the generator's planted classes.
  const eval::PreparedDataset ds = eval::Prepare(eval::ProductsSim(0.3));
  std::printf("account graph: %lld accounts, %lld relations; %zu unseen "
              "accounts to score\n",
              static_cast<long long>(ds.data.graph.num_nodes()),
              static_cast<long long>(ds.data.graph.num_edges()),
              ds.split.test_nodes.size());

  eval::PipelineConfig config;
  config.distill.base_epochs = 100;
  config.distill.single_epochs = 60;
  config.distill.multi_epochs = 40;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, config);
  auto engine = eval::MakeEngine(pipeline, ds);

  const std::size_t kBatch = 64;  // accounts arriving per scoring tick

  core::InferenceConfig vanilla;
  vanilla.nap = core::NapKind::kNone;
  const LatencyStats slow = Stream(*engine, ds, vanilla, kBatch);
  std::printf("\nvanilla full-depth scoring (k=%d):\n",
              pipeline.classifiers->depth());
  std::printf("  batch latency p50 %.1f ms, p95 %.1f ms, max %.1f ms; "
              "ACC %.2f%%\n",
              slow.p50, slow.p95, slow.max, slow.accuracy * 100);

  const auto settings =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  const LatencyStats fast = Stream(*engine, ds, settings[0].config, kBatch);
  std::printf("NAI speed-first scoring:\n");
  std::printf("  batch latency p50 %.1f ms, p95 %.1f ms, max %.1f ms; "
              "ACC %.2f%%\n",
              fast.p50, fast.p95, fast.max, fast.accuracy * 100);
  std::printf("\np95 latency cut %.1fx with %+.2f accuracy points.\n",
              slow.p95 / fast.p95, (fast.accuracy - slow.accuracy) * 100);
  return 0;
}
