// Streaming serving with QoS classes: the same sharded NAI deployment
// serving speed-first (NAI^1 config, tight deadline) and accuracy-first
// (NAI^3 config, loose deadline) traffic concurrently through the
// src/serve/ front-end — admission queues, dynamic batching, per-request
// deadlines.
//
// Three stages:
//   1. Exactness gate (closed loop, mixed classes): every response must be
//      bit-identical to a direct routed Infer of the same node under that
//      class's config — the serving stack may never change a prediction.
//   2. Closed-loop capacity: the saturated throughput at the requested
//      QoS mix, with per-class latency percentiles.
//   3. Open-loop sweep: Poisson arrivals at increasing fractions of the
//      closed-loop capacity x {speed-only, mixed, accuracy-only} traffic —
//      the latency/deadline-miss/shedding picture vs offered load.
//
// Flags: --threads N, --shards N, --qos {speed,accuracy,mix,0..100}
// (percent speed-first, default 50), --arrival-rate N (fix stage 3 to one
// offered load in qps instead of the sweep). NAI_SCALE shrinks the graph.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/serve/serving_engine.h"

namespace {

using namespace nai;

void PrintClassLine(const char* label, const serve::LatencySummary& lat,
                    std::int64_t misses) {
  std::printf("  %-15s %6lld served   p50 %7.2f ms   p95 %7.2f ms   "
              "p99 %7.2f ms   max %7.2f ms   %lld deadline misses\n",
              label, static_cast<long long>(lat.count), lat.p50_ms, lat.p95_ms,
              lat.p99_ms, lat.max_ms, static_cast<long long>(misses));
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = bench::ApplyThreadsFlag(argc, argv);
  const int num_shards = bench::ApplyShardsFlag(argc, argv);
  const int qos_mix = runtime::QosMixFlag(argc, argv, 50);
  const long fixed_rate = runtime::ArrivalRateFlag(argc, argv);
  const double scale = eval::EnvScale();

  bench::Banner("Streaming serving with QoS classes — arxiv-sim");
  const eval::PreparedDataset ds = eval::Prepare(eval::ArxivSim(scale));
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  const std::vector<std::int32_t>& test = ds.split.test_nodes;
  std::printf("n=%lld | %zu test nodes | %d threads | %d shards | "
              "%d%% speed-first\n",
              static_cast<long long>(ds.data.graph.num_nodes()), test.size(),
              threads, num_shards, qos_mix);

  auto sharded = eval::MakeShardedEngine(pipeline, ds, num_shards);
  const serve::QosPolicyTable policies =
      eval::MakeQosPolicyTable(pipeline, ds, core::NapKind::kDistance);

  // Per-class references: what a direct routed Infer answers for every
  // test node under each class's config. Serving must reproduce these bits.
  const core::InferenceResult ref_speed =
      sharded->Infer(test, policies.For(serve::QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = sharded->Infer(
      test, policies.For(serve::QosClass::kAccuracyFirst).config);

  serve::ServingOptions options;
  options.queue_capacity = 4096;
  options.batcher.max_batch = 64;
  options.batcher.max_wait_us = 200;

  // --- Stages 1+2: closed-loop mixed traffic, exactness-gated. -------------
  double closed_qps = 0.0;
  bool exact = true;
  {
    serve::ServingEngine server(*sharded, policies, options);
    eval::ServingLoadConfig load;
    load.arrival_rate_qps = 0.0;  // closed loop
    load.closed_loop_clients = std::max(4, 2 * threads);
    load.speed_first_fraction = qos_mix / 100.0;
    const eval::ServingRunReport report =
        eval::RunServing(server, test, load);
    closed_qps = report.achieved_qps;

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const std::int32_t want =
          report.classes[i] == serve::QosClass::kSpeedFirst
              ? ref_speed.predictions[i]
              : ref_accuracy.predictions[i];
      if (report.predictions[i] != want) ++mismatches;
    }
    exact = mismatches == 0;

    std::printf("\nclosed loop (%d clients, %d%% speed-first): %.0f q/s, "
                "mean batch %.1f, %s\n",
                load.closed_loop_clients, qos_mix, closed_qps,
                report.stats.mean_batch_size,
                exact ? "bit-exact vs direct Infer"
                      : "PREDICTION MISMATCH");
    PrintClassLine(
        "speed-first",
        report.stats.per_class[static_cast<std::size_t>(
            serve::QosClass::kSpeedFirst)],
        report.stats.per_class_misses[static_cast<std::size_t>(
            serve::QosClass::kSpeedFirst)]);
    PrintClassLine(
        "accuracy-first",
        report.stats.per_class[static_cast<std::size_t>(
            serve::QosClass::kAccuracyFirst)],
        report.stats.per_class_misses[static_cast<std::size_t>(
            serve::QosClass::kAccuracyFirst)]);
  }

  // --- Stage 3: open-loop Poisson sweep. -----------------------------------
  // Offered loads as fractions of the measured closed-loop capacity (or the
  // one --arrival-rate), a bounded query list per cell so every row runs in
  // seconds.
  const std::size_t open_n = std::min<std::size_t>(test.size(), 1000);
  const std::vector<std::int32_t> open_nodes(test.begin(),
                                             test.begin() + open_n);
  std::vector<double> rates;
  if (fixed_rate > 0) {
    rates.push_back(static_cast<double>(fixed_rate));
  } else {
    for (const double f : {0.25, 0.5, 0.9}) {
      const double r = f * closed_qps;
      if (r >= 1.0) rates.push_back(r);
    }
    if (rates.empty()) rates.push_back(1.0);
  }

  std::printf("\nopen loop (Poisson arrivals, %zu queries per cell):\n",
              open_n);
  std::printf("%-12s %-6s %-10s %-6s %-9s %-9s %-9s %-8s %-6s\n",
              "offered q/s", "mix%", "achieved", "shed", "p50 ms", "p95 ms",
              "p99 ms", "miss%", "batch");
  std::vector<int> mixes = {100, qos_mix, 0};
  mixes.erase(std::unique(mixes.begin(), mixes.end()), mixes.end());
  for (const double rate : rates) {
    for (const int mix : mixes) {
      serve::ServingEngine server(*sharded, policies, options);
      eval::ServingLoadConfig load;
      load.arrival_rate_qps = rate;
      load.speed_first_fraction = mix / 100.0;
      load.seed = 42 + static_cast<std::uint64_t>(mix);
      const eval::ServingRunReport report =
          eval::RunServing(server, open_nodes, load);
      const std::int64_t offered =
          static_cast<std::int64_t>(open_nodes.size());
      const double miss_pct =
          report.stats.completed + report.stats.dropped == 0
              ? 0.0
              : 100.0 * static_cast<double>(report.stats.deadline_misses) /
                    static_cast<double>(report.stats.completed +
                                        report.stats.dropped);
      std::printf("%-12.0f %-6d %-10.0f %-6lld %-9.2f %-9.2f %-9.2f "
                  "%-8.1f %-6.1f\n",
                  rate, mix, report.achieved_qps,
                  static_cast<long long>(offered - report.stats.completed -
                                         report.stats.dropped),
                  report.stats.latency.p50_ms, report.stats.latency.p95_ms,
                  report.stats.latency.p99_ms, miss_pct,
                  report.stats.mean_batch_size);
    }
  }

  if (!exact) {
    std::printf("\nFAIL: serving responses diverged from direct Infer\n");
    return 1;
  }
  std::printf("\nall serving responses bit-identical to direct Infer\n");
  return 0;
}
