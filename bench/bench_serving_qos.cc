// Streaming serving with QoS classes: the same sharded NAI deployment
// serving speed-first (NAI^1 config, tight deadline), accuracy-first
// (NAI^3 config, loose deadline) and throughput-first (NAI^1 + INT8
// classifier, co-batched with an explicit accuracy-delta budget) traffic
// concurrently through the src/serve/ front-end — admission queues,
// dynamic batching, per-request deadlines.
//
// Five stages:
//   1. Exactness gate (closed loop, all three classes mixed): every
//      response must be bit-identical to a direct routed Infer of the same
//      node under that class's config — the serving stack may never change
//      a prediction (per-row INT8 quantization makes even the throughput
//      class batch-invariant). The throughput class additionally proves
//      its accuracy-delta budget: predictions may differ from the float
//      twin of its config on at most accuracy_delta_budget of the nodes.
//   2. Closed-loop capacity: the saturated throughput at the requested
//      QoS mix, with per-class latency percentiles.
//   3. Open-loop sweep: Poisson arrivals at increasing fractions of the
//      closed-loop capacity x {speed-only, mixed, accuracy-only} traffic —
//      the latency/deadline-miss/shedding picture vs offered load.
//   4. Skewed-load scheduler A/B: the same shard-skewed bursty load with
//      priority + work stealing off and on (admission control off in both
//      cells so the coalescing window matches) — also exactness-gated, so
//      the steal path proves its bit-identity under real contention.
//   5. Zipf-skew result-cache A/B: the same Zipf-sampled closed-loop
//      request stream (draws with replacement, hot head nodes) with the
//      result cache off and on, at two skew levels — hit ratio, p50 and
//      throughput, exactness-gated (a cache hit must replay the same bits
//      a cold Infer produces).
//
// Flags: --threads N, --shards N, --qos {speed,accuracy,mix,0..100}
// (percent speed-first, default 50), --arrival-rate N (fix stage 3 to one
// offered load in qps instead of the sweep), --zipf A (Zipf-skew the stage
// 3 sweep's node draws; stage 5 always runs its own two levels),
// --json PATH (write the smoke summary — p50/p95, throughput,
// deadline-miss rate, scheduler and cache A/Bs — as JSON, the
// BENCH_serving.json CI artifact). NAI_SCALE shrinks the graph.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/serve/serving_engine.h"

namespace {

using namespace nai;

void PrintClassLine(const char* label, const serve::LatencySummary& lat,
                    std::int64_t misses) {
  std::printf("  %-15s %6lld served   p50 %7.2f ms   p95 %7.2f ms   "
              "p99 %7.2f ms   max %7.2f ms   %lld deadline misses\n",
              label, static_cast<long long>(lat.count), lat.p50_ms, lat.p95_ms,
              lat.p99_ms, lat.max_ms, static_cast<long long>(misses));
}

double MissRate(const serve::ServingStatsSnapshot& stats) {
  const std::int64_t finished = stats.completed + stats.dropped;
  return finished == 0 ? 0.0
                       : static_cast<double>(stats.deadline_misses) /
                             static_cast<double>(finished);
}

/// One skewed-load A/B cell: shard-phased bursty arrivals, exactness
/// checked against the per-class references.
struct SkewedCell {
  double achieved_qps = 0.0;
  double speed_p95_ms = 0.0;
  double miss_rate = 0.0;
  std::int64_t stolen_requests = 0;
  std::size_t mismatches = 0;
};

SkewedCell RunSkewedCell(core::ShardedNaiEngine& sharded,
                         const serve::QosPolicyTable& policies,
                         const serve::ServingOptions& base_options,
                         bool scheduler_on,
                         const std::vector<std::int32_t>& nodes,
                         const core::InferenceResult& ref_speed,
                         const core::InferenceResult& ref_accuracy,
                         double rate_qps, int qos_mix) {
  // The A/B isolates priority + stealing (the mechanisms the skewed load
  // exercises); the admission controller stays off in both cells so the
  // coalescing window is identical and the comparison is apples-to-apples.
  serve::ServingOptions options = base_options;
  options.scheduler.priority = scheduler_on;
  options.scheduler.stealing = scheduler_on;
  options.scheduler.adaptive = false;
  serve::ServingEngine server(sharded, policies, options);

  eval::ServingLoadConfig load;
  load.arrival_rate_qps = rate_qps;
  load.speed_first_fraction = qos_mix / 100.0;
  load.skew_by_shard = true;
  load.burst_on_ms = 20.0;
  load.burst_off_ms = 20.0;
  load.seed = 1234;  // same arrivals and classes in both cells
  const eval::ServingRunReport report =
      eval::RunServing(server, nodes, load);

  SkewedCell cell;
  cell.achieved_qps = report.achieved_qps;
  cell.speed_p95_ms =
      report.stats
          .per_class[static_cast<std::size_t>(serve::QosClass::kSpeedFirst)]
          .p95_ms;
  cell.miss_rate = MissRate(report.stats);
  cell.stolen_requests = report.stats.stolen_requests;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (report.predictions[i] < 0) continue;  // shed under overload
    const std::int32_t want =
        report.classes[i] == serve::QosClass::kSpeedFirst
            ? ref_speed.predictions[i]
            : ref_accuracy.predictions[i];
    if (report.predictions[i] != want) ++cell.mismatches;
  }
  return cell;
}

/// One result-cache A/B cell: Zipf-skewed closed-loop traffic, exactness
/// checked per request against the per-class references (request t answers
/// nodes[request_indices[t]] — a cache hit must replay the cold bits).
struct CacheCell {
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double hit_ratio = 0.0;
  std::size_t mismatches = 0;
};

CacheCell RunCacheCell(core::ShardedNaiEngine& sharded,
                       const serve::QosPolicyTable& policies,
                       const serve::ServingOptions& base_options,
                       bool cache_on, const std::vector<std::int32_t>& nodes,
                       const core::InferenceResult& ref_speed,
                       const core::InferenceResult& ref_accuracy,
                       double zipf_alpha, int qos_mix, int threads) {
  serve::ServingOptions options = base_options;
  options.cache.enabled = cache_on;
  serve::ServingEngine server(sharded, policies, options);

  eval::ServingLoadConfig load;
  load.arrival_rate_qps = 0.0;  // closed loop: same work in both cells
  load.closed_loop_clients = std::max(4, 2 * threads);
  load.speed_first_fraction = qos_mix / 100.0;
  load.zipf_alpha = zipf_alpha;
  load.num_requests = 2 * nodes.size();  // repeats are the whole point
  load.seed = 4242;  // same draws and classes in both cells
  const eval::ServingRunReport report = eval::RunServing(server, nodes, load);

  CacheCell cell;
  cell.achieved_qps = report.achieved_qps;
  cell.p50_ms = report.stats.latency.p50_ms;
  cell.p95_ms = report.stats.latency.p95_ms;
  cell.hit_ratio = report.stats.cache_hit_ratio;
  for (std::size_t t = 0; t < report.predictions.size(); ++t) {
    if (report.predictions[t] < 0) continue;
    const std::size_t i = report.request_indices[t];
    const std::int32_t want =
        report.classes[t] == serve::QosClass::kSpeedFirst
            ? ref_speed.predictions[i]
            : ref_accuracy.predictions[i];
    if (report.predictions[t] != want) ++cell.mismatches;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = bench::ApplyThreadsFlag(argc, argv);
  const int num_shards = bench::ApplyShardsFlag(argc, argv);
  const int qos_mix = runtime::QosMixFlag(argc, argv, 50);
  const long fixed_rate = runtime::ArrivalRateFlag(argc, argv);
  const double sweep_zipf = runtime::ZipfFlag(argc, argv);
  const char* json_path = runtime::ConsumeStringFlag(argc, argv, "--json");
  const double scale = eval::EnvScale();

  bench::Banner("Streaming serving with QoS classes — arxiv-sim");
  const eval::PreparedDataset ds = eval::Prepare(eval::ArxivSim(scale));
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  const std::vector<std::int32_t>& test = ds.split.test_nodes;
  std::printf("n=%lld | %zu test nodes | %d threads | %d shards | "
              "%d%% speed-first\n",
              static_cast<long long>(ds.data.graph.num_nodes()), test.size(),
              threads, num_shards, qos_mix);

  auto sharded = eval::MakeShardedEngine(pipeline, ds, num_shards);
  const serve::QosPolicyTable policies =
      eval::MakeQosPolicyTable(pipeline, ds, core::NapKind::kDistance);

  // Per-class references: what a direct routed Infer answers for every
  // test node under each class's config. Serving must reproduce these bits.
  const core::InferenceResult ref_speed =
      sharded->Infer(test, policies.For(serve::QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = sharded->Infer(
      test, policies.For(serve::QosClass::kAccuracyFirst).config);
  const serve::QosPolicy& throughput_policy =
      policies.For(serve::QosClass::kThroughputFirst);
  const core::InferenceResult ref_throughput =
      sharded->Infer(test, throughput_policy.config);

  // The throughput class's accuracy-delta budget, measured against the
  // float twin of its own config (INT8 off, everything else identical).
  core::InferenceConfig float_twin = throughput_policy.config;
  float_twin.int8_classifier = false;
  const core::InferenceResult ref_twin = sharded->Infer(test, float_twin);
  std::size_t int8_flips = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (ref_throughput.predictions[i] != ref_twin.predictions[i]) ++int8_flips;
  }
  const double flip_rate = test.empty()
                               ? 0.0
                               : static_cast<double>(int8_flips) /
                                     static_cast<double>(test.size());
  const bool budget_ok = flip_rate <= throughput_policy.accuracy_delta_budget;
  std::printf("int8 accuracy delta: %.4f (%zu of %zu flips, budget %.4f) "
              "— %s\n",
              flip_rate, int8_flips, test.size(),
              throughput_policy.accuracy_delta_budget,
              budget_ok ? "within budget" : "OVER BUDGET");

  serve::ServingOptions options;
  options.queue_capacity = 4096;
  options.batcher.max_batch = 64;
  options.batcher.max_wait_us = 200;

  // --- Stages 1+2: closed-loop mixed traffic, exactness-gated. -------------
  double closed_qps = 0.0;
  bool exact = true;
  serve::ServingStatsSnapshot closed_stats;
  {
    serve::ServingEngine server(*sharded, policies, options);
    eval::ServingLoadConfig load;
    load.arrival_rate_qps = 0.0;  // closed loop
    load.closed_loop_clients = std::max(4, 2 * threads);
    // A fixed 20% throughput-first share; the --qos mix splits the rest
    // between speed- and accuracy-first as before.
    load.throughput_fraction = 0.2;
    load.speed_first_fraction = 0.8 * qos_mix / 100.0;
    const eval::ServingRunReport report =
        eval::RunServing(server, test, load);
    closed_qps = report.achieved_qps;
    closed_stats = report.stats;

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const std::int32_t want =
          report.classes[i] == serve::QosClass::kSpeedFirst
              ? ref_speed.predictions[i]
          : report.classes[i] == serve::QosClass::kThroughputFirst
              ? ref_throughput.predictions[i]
              : ref_accuracy.predictions[i];
      if (report.predictions[i] != want) ++mismatches;
    }
    exact = mismatches == 0;

    std::printf("\nclosed loop (%d clients, %d%% speed-first of the float "
                "share, 20%% throughput-first): %.0f q/s, mean batch %.1f, "
                "%s\n",
                load.closed_loop_clients, qos_mix, closed_qps,
                report.stats.mean_batch_size,
                exact ? "bit-exact vs direct Infer"
                      : "PREDICTION MISMATCH");
    PrintClassLine(
        "speed-first",
        report.stats.per_class[static_cast<std::size_t>(
            serve::QosClass::kSpeedFirst)],
        report.stats.per_class_misses[static_cast<std::size_t>(
            serve::QosClass::kSpeedFirst)]);
    PrintClassLine(
        "throughput-first",
        report.stats.per_class[static_cast<std::size_t>(
            serve::QosClass::kThroughputFirst)],
        report.stats.per_class_misses[static_cast<std::size_t>(
            serve::QosClass::kThroughputFirst)]);
    PrintClassLine(
        "accuracy-first",
        report.stats.per_class[static_cast<std::size_t>(
            serve::QosClass::kAccuracyFirst)],
        report.stats.per_class_misses[static_cast<std::size_t>(
            serve::QosClass::kAccuracyFirst)]);
  }

  // --- Stage 3: open-loop Poisson sweep. -----------------------------------
  // Offered loads as fractions of the measured closed-loop capacity (or the
  // one --arrival-rate), a bounded query list per cell so every row runs in
  // seconds.
  const std::size_t open_n = std::min<std::size_t>(test.size(), 1000);
  const std::vector<std::int32_t> open_nodes(test.begin(),
                                             test.begin() + open_n);
  std::vector<double> rates;
  if (fixed_rate > 0) {
    rates.push_back(static_cast<double>(fixed_rate));
  } else {
    for (const double f : {0.25, 0.5, 0.9}) {
      const double r = f * closed_qps;
      if (r >= 1.0) rates.push_back(r);
    }
    if (rates.empty()) rates.push_back(1.0);
  }

  std::printf("\nopen loop (Poisson arrivals, %zu queries per cell):\n",
              open_n);
  std::printf("%-12s %-6s %-10s %-6s %-9s %-9s %-9s %-8s %-6s\n",
              "offered q/s", "mix%", "achieved", "shed", "p50 ms", "p95 ms",
              "p99 ms", "miss%", "batch");
  std::vector<int> mixes = {100, qos_mix, 0};
  mixes.erase(std::unique(mixes.begin(), mixes.end()), mixes.end());
  for (const double rate : rates) {
    for (const int mix : mixes) {
      serve::ServingEngine server(*sharded, policies, options);
      eval::ServingLoadConfig load;
      load.arrival_rate_qps = rate;
      load.speed_first_fraction = mix / 100.0;
      load.zipf_alpha = sweep_zipf;  // 0 unless --zipf skews the sweep
      load.seed = 42 + static_cast<std::uint64_t>(mix);
      const eval::ServingRunReport report =
          eval::RunServing(server, open_nodes, load);
      const std::int64_t offered =
          static_cast<std::int64_t>(open_nodes.size());
      const double miss_pct =
          report.stats.completed + report.stats.dropped == 0
              ? 0.0
              : 100.0 * static_cast<double>(report.stats.deadline_misses) /
                    static_cast<double>(report.stats.completed +
                                        report.stats.dropped);
      std::printf("%-12.0f %-6d %-10.0f %-6lld %-9.2f %-9.2f %-9.2f "
                  "%-8.1f %-6.1f\n",
                  rate, mix, report.achieved_qps,
                  static_cast<long long>(offered - report.stats.completed -
                                         report.stats.dropped),
                  report.stats.latency.p50_ms, report.stats.latency.p95_ms,
                  report.stats.latency.p99_ms, miss_pct,
                  report.stats.mean_batch_size);
    }
  }

  // --- Stage 4: skewed-load scheduler A/B. ---------------------------------
  // All arrivals phase through one shard at a time in 20ms bursts at a
  // rate past the closed-loop capacity — head-of-line blocking, idle
  // sibling pumps and queue buildup all at once. The same seeded load
  // runs with the adaptive scheduler off and on; both must stay bit-exact
  // (this is where the steal path earns its determinism contract).
  const double skew_rate =
      std::max(20.0, fixed_rate > 0 ? static_cast<double>(fixed_rate)
                                    : 2.0 * closed_qps);
  serve::ServingOptions skew_options = options;
  skew_options.batcher.max_batch = 16;  // deeper backlogs: steals matter
  const SkewedCell off =
      RunSkewedCell(*sharded, policies, skew_options, /*scheduler_on=*/false,
                    open_nodes, ref_speed, ref_accuracy, skew_rate, qos_mix);
  const SkewedCell on =
      RunSkewedCell(*sharded, policies, skew_options, /*scheduler_on=*/true,
                    open_nodes, ref_speed, ref_accuracy, skew_rate, qos_mix);
  exact = exact && off.mismatches == 0 && on.mismatches == 0;

  std::printf("\nskewed bursty load (%.0f q/s peak, shard-phased, %d%% "
              "speed-first, %zu queries):\n",
              skew_rate, qos_mix, open_nodes.size());
  std::printf("  %-18s %-10s %-14s %-8s %-8s\n", "scheduler",
              "achieved", "speed p95 ms", "miss%", "stolen");
  std::printf("  %-18s %-10.0f %-14.2f %-8.1f %-8lld\n", "off (FIFO)",
              off.achieved_qps, off.speed_p95_ms, 100.0 * off.miss_rate,
              static_cast<long long>(0));
  std::printf("  %-18s %-10.0f %-14.2f %-8.1f %-8lld\n", "on (pri+steal)",
              on.achieved_qps, on.speed_p95_ms, 100.0 * on.miss_rate,
              static_cast<long long>(on.stolen_requests));
  const bool improved = on.speed_p95_ms < off.speed_p95_ms ||
                        on.achieved_qps > off.achieved_qps;
  std::printf("  -> scheduler %s (speed p95 %.2f -> %.2f ms, throughput "
              "%.0f -> %.0f q/s)\n",
              improved ? "improves the skewed tail" : "did NOT improve",
              off.speed_p95_ms, on.speed_p95_ms, off.achieved_qps,
              on.achieved_qps);

  // --- Stage 5: Zipf-skew result-cache A/B. --------------------------------
  // The same Zipf-sampled closed-loop request stream (2x draws with
  // replacement from the bounded node list) with the result cache off and
  // on, at a mild and a heavy skew. The cache-on cell is exactness-gated
  // per request: a hit must replay exactly what a cold Infer answers.
  struct CacheAb {
    double alpha = 0.0;
    CacheCell off;
    CacheCell on;
  };
  std::vector<CacheAb> cache_abs;
  std::printf("\nzipf result-cache A/B (closed loop, %zu draws over %zu "
              "nodes, %d%% speed-first):\n",
              2 * open_nodes.size(), open_nodes.size(), qos_mix);
  std::printf("  %-8s %-8s %-10s %-9s %-9s %-10s\n", "alpha", "cache",
              "achieved", "p50 ms", "p95 ms", "hit ratio");
  for (const double alpha : {0.5, 1.0}) {
    CacheAb ab;
    ab.alpha = alpha;
    ab.off = RunCacheCell(*sharded, policies, options, /*cache_on=*/false,
                          open_nodes, ref_speed, ref_accuracy, alpha, qos_mix,
                          threads);
    ab.on = RunCacheCell(*sharded, policies, options, /*cache_on=*/true,
                         open_nodes, ref_speed, ref_accuracy, alpha, qos_mix,
                         threads);
    exact = exact && ab.off.mismatches == 0 && ab.on.mismatches == 0;
    std::printf("  %-8.2f %-8s %-10.0f %-9.3f %-9.3f %-10s\n", alpha, "off",
                ab.off.achieved_qps, ab.off.p50_ms, ab.off.p95_ms, "-");
    std::printf("  %-8.2f %-8s %-10.0f %-9.3f %-9.3f %-10.3f\n", alpha, "on",
                ab.on.achieved_qps, ab.on.p50_ms, ab.on.p95_ms,
                ab.on.hit_ratio);
    std::printf("  -> cache %s at alpha %.2f (p50 %.3f -> %.3f ms, "
                "hit ratio %.1f%%)\n",
                ab.on.p50_ms < ab.off.p50_ms ? "improves p50"
                                             : "did NOT improve p50",
                alpha, ab.off.p50_ms, ab.on.p50_ms, 100.0 * ab.on.hit_ratio);
    cache_abs.push_back(ab);
  }

  // --- Optional JSON artifact (the CI bench-smoke trajectory). -------------
  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::printf("FAIL: cannot write %s\n", json_path);
      return 1;
    }
    const auto speed_idx =
        static_cast<std::size_t>(serve::QosClass::kSpeedFirst);
    const auto acc_idx =
        static_cast<std::size_t>(serve::QosClass::kAccuracyFirst);
    const auto tp_idx =
        static_cast<std::size_t>(serve::QosClass::kThroughputFirst);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"bench_serving_qos\",\n");
    std::fprintf(f, "  \"scale\": %.4f,\n", scale);
    std::fprintf(f, "  \"threads\": %d,\n", threads);
    std::fprintf(f, "  \"shards\": %d,\n", num_shards);
    std::fprintf(f, "  \"qos_mix_percent\": %d,\n", qos_mix);
    std::fprintf(f, "  \"exact\": %s,\n", exact ? "true" : "false");
    std::fprintf(f,
                 "  \"closed_loop\": {\"throughput_qps\": %.2f, "
                 "\"p50_ms\": %.4f, \"p95_ms\": %.4f, "
                 "\"deadline_miss_rate\": %.6f, \"mean_batch\": %.2f,\n",
                 closed_qps, closed_stats.latency.p50_ms,
                 closed_stats.latency.p95_ms, MissRate(closed_stats),
                 closed_stats.mean_batch_size);
    std::fprintf(f,
                 "    \"speed_first\": {\"p50_ms\": %.4f, \"p95_ms\": "
                 "%.4f},\n",
                 closed_stats.per_class[speed_idx].p50_ms,
                 closed_stats.per_class[speed_idx].p95_ms);
    std::fprintf(f,
                 "    \"throughput_first\": {\"p50_ms\": %.4f, \"p95_ms\": "
                 "%.4f},\n",
                 closed_stats.per_class[tp_idx].p50_ms,
                 closed_stats.per_class[tp_idx].p95_ms);
    std::fprintf(f,
                 "    \"accuracy_first\": {\"p50_ms\": %.4f, \"p95_ms\": "
                 "%.4f}},\n",
                 closed_stats.per_class[acc_idx].p50_ms,
                 closed_stats.per_class[acc_idx].p95_ms);
    std::fprintf(f,
                 "  \"int8\": {\"accuracy_delta\": %.6f, \"budget\": %.4f, "
                 "\"within_budget\": %s},\n",
                 flip_rate, throughput_policy.accuracy_delta_budget,
                 budget_ok ? "true" : "false");
    std::fprintf(f,
                 "  \"skewed\": {\"offered_peak_qps\": %.2f,\n"
                 "    \"scheduler_off\": {\"achieved_qps\": %.2f, "
                 "\"speed_p95_ms\": %.4f, \"deadline_miss_rate\": %.6f},\n"
                 "    \"scheduler_on\": {\"achieved_qps\": %.2f, "
                 "\"speed_p95_ms\": %.4f, \"deadline_miss_rate\": %.6f, "
                 "\"stolen_requests\": %lld},\n"
                 "    \"improved\": %s}\n",
                 skew_rate, off.achieved_qps, off.speed_p95_ms,
                 off.miss_rate, on.achieved_qps, on.speed_p95_ms,
                 on.miss_rate, static_cast<long long>(on.stolen_requests),
                 improved ? "true" : "false");
    std::fprintf(f, ",\n  \"cache_ab\": [");
    for (std::size_t k = 0; k < cache_abs.size(); ++k) {
      const CacheAb& ab = cache_abs[k];
      std::fprintf(
          f,
          "%s\n    {\"zipf_alpha\": %.2f,\n"
          "     \"cache_off\": {\"achieved_qps\": %.2f, \"p50_ms\": %.4f, "
          "\"p95_ms\": %.4f},\n"
          "     \"cache_on\": {\"achieved_qps\": %.2f, \"p50_ms\": %.4f, "
          "\"p95_ms\": %.4f, \"hit_ratio\": %.4f},\n"
          "     \"p50_improved\": %s}",
          k == 0 ? "" : ",", ab.alpha, ab.off.achieved_qps, ab.off.p50_ms,
          ab.off.p95_ms, ab.on.achieved_qps, ab.on.p50_ms, ab.on.p95_ms,
          ab.on.hit_ratio, ab.on.p50_ms < ab.off.p50_ms ? "true" : "false");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  if (!exact) {
    std::printf("\nFAIL: serving responses diverged from direct Infer\n");
    return 1;
  }
  if (!budget_ok) {
    std::printf("\nFAIL: int8 accuracy delta exceeded the throughput "
                "class's budget\n");
    return 1;
  }
  std::printf("\nall serving responses bit-identical to direct Infer; "
              "int8 delta within budget\n");
  return 0;
}
