// Kernel micro-benchmarks (google-benchmark): the numerical primitives the
// inference engine is built from — dense GEMM, sparse SpMM (full / prefix),
// supporting-node sampling, stationary-state rows, and the Gumbel gate
// decision. Useful for tracking regressions in the substrate.

#include <benchmark/benchmark.h>

#include "src/runtime/flags.h"

#include "src/core/nap_gate.h"
#include "src/core/stationary.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/graph/sampler.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"

namespace {

using namespace nai;

graph::SyntheticDataset MakeGraph(std::int64_t n) {
  graph::GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.num_edges = n * 10;
  cfg.feature_dim = 64;
  cfg.seed = 7;
  return graph::GenerateDataset(cfg);
}

void BM_DenseGemm(benchmark::State& state) {
  const std::size_t n = state.range(0);
  tensor::Rng rng(1);
  tensor::Matrix a(n, 64), b(64, 64);
  tensor::FillGaussian(a, 1.0f, rng);
  tensor::FillGaussian(b, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_DenseGemm)->Arg(1024)->Arg(8192);

void BM_SpMM(benchmark::State& state) {
  const auto ds = MakeGraph(state.range(0));
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, 0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::SpMM(adj, ds.features));
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * 64);
}
BENCHMARK(BM_SpMM)->Arg(2000)->Arg(10000);

void BM_SpMMPrefix(benchmark::State& state) {
  const auto ds = MakeGraph(4000);
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, 0.5f);
  tensor::Matrix out(adj.rows, 64);
  const std::int64_t limit = adj.rows * state.range(0) / 100;
  for (auto _ : state) {
    graph::SpMMPrefix(adj, ds.features, limit, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * adj.row_ptr[limit] * 64);
}
BENCHMARK(BM_SpMMPrefix)->Arg(10)->Arg(50)->Arg(100);

void BM_SupportSampling(benchmark::State& state) {
  const auto ds = MakeGraph(10000);
  const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, 0.5f);
  graph::SupportSampler sampler(adj);
  std::vector<std::int32_t> batch;
  for (std::int32_t i = 0; i < 500; ++i) batch.push_back(i * 7 % 10000);
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(batch, depth));
  }
}
BENCHMARK(BM_SupportSampling)->Arg(1)->Arg(2)->Arg(4);

void BM_StationaryRows(benchmark::State& state) {
  const auto ds = MakeGraph(10000);
  const core::StationaryState stationary(ds.graph, ds.features, 0.5f);
  std::vector<std::int32_t> batch;
  for (std::int32_t i = 0; i < state.range(0); ++i) batch.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stationary.RowsForNodes(batch));
  }
  state.SetItemsProcessed(state.iterations() * batch.size() * 64);
}
BENCHMARK(BM_StationaryRows)->Arg(500)->Arg(5000);

void BM_GateDecision(benchmark::State& state) {
  core::GateStack gates(5, 64, 3);
  tensor::Rng rng(4);
  tensor::Matrix x(state.range(0), 64), xi(state.range(0), 64);
  tensor::FillGaussian(x, 1.0f, rng);
  tensor::FillGaussian(xi, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gates.ShouldExit(1, x, xi));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GateDecision)->Arg(500)->Arg(5000);

void BM_SoftmaxRows(benchmark::State& state) {
  tensor::Rng rng(5);
  tensor::Matrix m(state.range(0), 64);
  tensor::FillGaussian(m, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SoftmaxRows(m));
  }
  state.SetItemsProcessed(state.iterations() * m.size());
}
BENCHMARK(BM_SoftmaxRows)->Arg(10000);

}  // namespace

// Expanded BENCHMARK_MAIN so the shared --threads flag is stripped before
// google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  nai::runtime::ApplyThreadsFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
