// Kernel A/B benchmark: the dispatched numerical primitives the inference
// engine is built from — dense MatMul / MatMulTransposeB, sparse SpMM, the
// INT8 classifier GEMM, and axpy — timed at every supported SIMD level
// against the scalar reference on the same operands. Reports GFLOP/s (or
// GOP/s for the integer kernel) per level and the best-level speedup.
//
// On a vector host (BestSupportedLevel() != scalar) the MatMul speedup must
// reach the x1.5 gate or the binary exits non-zero — the regression tripwire
// scripts/check.sh runs. On a scalar-only host the gate auto-skips (there is
// nothing to compare), keeping the bench green on any machine.
//
// Flags: --threads N (kernel pool size; the A/B runs at this parallelism),
// --json PATH (splice a "kernels" section into the BENCH_serving.json
// artifact written by bench_serving_qos — run after it so the splice lands
// on a fresh file).

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/normalize.h"
#include "src/nn/linear.h"
#include "src/nn/quantized.h"
#include "src/tensor/matrix.h"
#include "src/tensor/ops.h"
#include "src/tensor/random.h"
#include "src/tensor/simd.h"

namespace {

using namespace nai;

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Best-of-N wall time of one call, in seconds. Repeats until the total
/// exceeds ~60 ms so fast kernels are not timed at clock granularity; the
/// minimum is the least-noisy estimate of the kernel's true cost.
template <typename Fn>
double TimeSeconds(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up: page in operands, settle the pool
  double best = 1e30;
  double total = 0.0;
  int reps = 0;
  while ((total < 0.06 || reps < 3) && reps < 200) {
    const auto t0 = clock::now();
    fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    best = std::min(best, s);
    total += s;
    ++reps;
  }
  return best;
}

struct AbRow {
  std::string name;
  double flops = 0.0;  ///< fused multiply-add counted as 2 ops
  std::vector<double> gflops;  ///< aligned with simd::SupportedLevels()
  double Speedup() const {
    return gflops.size() > 1 && gflops.front() > 0.0
               ? gflops.back() / gflops.front()
               : 1.0;
  }
};

/// Times `fn` once per supported level (scalar first) and converts to
/// GFLOP/s. The active level is pinned around each run and restored by the
/// caller at exit.
template <typename Fn>
AbRow RunAb(const std::string& name, double flops, Fn&& fn) {
  AbRow row;
  row.name = name;
  row.flops = flops;
  for (const tensor::simd::Level level : tensor::simd::SupportedLevels()) {
    tensor::simd::SetActiveLevelForTesting(level);
    const double s = TimeSeconds(fn);
    row.gflops.push_back(s > 0.0 ? flops / s / 1e9 : 0.0);
  }
  return row;
}

void PrintRow(const AbRow& row) {
  const std::vector<tensor::simd::Level> levels =
      tensor::simd::SupportedLevels();
  std::printf("  %-28s", row.name.c_str());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    std::printf("  %s %8.2f", tensor::simd::LevelName(levels[i]),
                row.gflops[i]);
  }
  if (levels.size() > 1) std::printf("   (x%.2f)", row.Speedup());
  std::printf("\n");
}

/// Splices `section` (a JSON object body) into `path` under the "kernels"
/// key: appended to an existing object (bench_serving_qos's artifact),
/// replacing any previous kernels section, or written as a fresh object
/// when the file is missing.
bool SpliceKernelsJson(const char* path, const std::string& section) {
  std::string existing;
  if (std::FILE* in = std::fopen(path, "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) existing.append(buf, n);
    std::fclose(in);
  }
  const std::size_t prev = existing.find("\"kernels\"");
  if (prev != std::string::npos) {
    const std::size_t comma = existing.rfind(',', prev);
    existing.erase(comma == std::string::npos ? prev : comma);
  } else {
    const std::size_t close = existing.find_last_of('}');
    if (close == std::string::npos) {
      existing.clear();
    } else {
      existing.erase(close);
    }
  }
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' ' ||
          existing.back() == ',')) {
    existing.pop_back();
  }
  if (existing.empty()) existing = "{";

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) return false;
  const char* sep = existing.back() == '{' ? "\n" : ",\n";
  std::fprintf(out, "%s%s  \"kernels\": %s\n}\n", existing.c_str(), sep,
               section.c_str());
  std::fclose(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = bench::ApplyThreadsFlag(argc, argv);
  const char* json_path = runtime::ConsumeStringFlag(argc, argv, "--json");
  (void)threads;

  const std::vector<tensor::simd::Level> levels =
      tensor::simd::SupportedLevels();
  const tensor::simd::Level best = tensor::simd::BestSupportedLevel();
  const bool vector_host = best != tensor::simd::Level::kScalar;

  bench::Banner(std::string("Kernel A/B: scalar vs ") +
                tensor::simd::LevelName(best) +
                (vector_host ? "" : " (scalar-only host: speedup gate skipped)"));

  tensor::Rng rng(17);
  std::vector<AbRow> rows;

  // Dense MatMul at the engine's two working shapes: a big square GEMM and
  // the tall-thin classifier shape (many nodes x feature dim).
  for (const auto& [m, k, n] :
       std::initializer_list<std::array<std::size_t, 3>>{{256, 256, 256},
                                                         {4096, 64, 64}}) {
    tensor::Matrix a(m, k), b(k, n);
    tensor::FillGaussian(a, 1.0f, rng);
    tensor::FillGaussian(b, 1.0f, rng);
    char name[64];
    std::snprintf(name, sizeof name, "MatMul %zux%zux%zu", m, k, n);
    rows.push_back(RunAb(name, 2.0 * m * k * n, [&] {
      tensor::Matrix out = tensor::MatMul(a, b);
      asm volatile("" : : "r"(out.data()) : "memory");
    }));
    PrintRow(rows.back());
  }

  {
    const std::size_t m = 2048, k = 64, n = 64;
    tensor::Matrix a(m, k), bt(n, k);
    tensor::FillGaussian(a, 1.0f, rng);
    tensor::FillGaussian(bt, 1.0f, rng);
    rows.push_back(RunAb("MatMulTransposeB 2048x64x64", 2.0 * m * k * n, [&] {
      tensor::Matrix out = tensor::MatMulTransposeB(a, bt);
      asm volatile("" : : "r"(out.data()) : "memory");
    }));
    PrintRow(rows.back());
  }

  {
    graph::GeneratorConfig cfg;
    cfg.num_nodes = 20000;
    cfg.num_edges = 200000;
    cfg.feature_dim = 64;
    cfg.seed = 7;
    const graph::SyntheticDataset ds = graph::GenerateDataset(cfg);
    const graph::Csr adj = graph::NormalizedAdjacency(ds.graph, 0.5f);
    rows.push_back(RunAb("SpMM 20k nodes x 64 feats",
                         2.0 * static_cast<double>(adj.nnz()) * 64.0, [&] {
      tensor::Matrix out = graph::SpMM(adj, ds.features);
      asm volatile("" : : "r"(out.data()) : "memory");
    }));
    PrintRow(rows.back());
  }

  {
    // The INT8 classifier layer end-to-end: per-row quantize + gemm_s8 +
    // dequant, the kThroughputFirst hot path.
    const std::size_t m = 4096, k = 64, n = 64;
    nn::Linear layer(k, n, rng);
    const nn::QuantizedLinear q(layer);
    tensor::Matrix x(m, k);
    tensor::FillGaussian(x, 1.0f, rng);
    rows.push_back(RunAb("Int8Linear 4096x64x64", 2.0 * m * k * n, [&] {
      tensor::Matrix out = q.Forward(x);
      asm volatile("" : : "r"(out.data()) : "memory");
    }));
    PrintRow(rows.back());
  }

  {
    const std::size_t len = 1 << 16;
    std::vector<float> src(len), dst(len);
    for (std::size_t i = 0; i < len; ++i) src[i] = 0.001f * (i % 97);
    // 64 sweeps per timed call so the kernel dominates the call overhead.
    rows.push_back(RunAb("axpy 65536", 2.0 * len * 64.0, [&] {
      for (int r = 0; r < 64; ++r) {
        tensor::simd::ActiveKernels().axpy(0.5f, src.data(), dst.data(), len);
      }
      asm volatile("" : : "r"(dst.data()) : "memory");
    }));
    PrintRow(rows.back());
  }

  tensor::simd::SetActiveLevelForTesting(best);

  // --- Speedup gate ---------------------------------------------------------
  // Gate on the faster of the two dense MatMul shapes: the tall-thin
  // classifier shape is where the engine spends its dense flops, and the
  // square shape can be bound by memory bandwidth on both paths (the
  // "scalar" reference is itself compiler-autovectorized at -O3), so
  // requiring both would gate on the cache, not the kernels.
  bool pass = true;
  if (vector_host) {
    const double matmul_speedup =
        std::max(rows[0].Speedup(), rows[1].Speedup());
    pass = matmul_speedup >= 1.5;
    std::printf("\nspeedup gate: best dense MatMul best/scalar = x%.2f "
                "(need x1.50) — %s\n",
                matmul_speedup, pass ? "PASS" : "FAIL");
  } else {
    std::printf("\nspeedup gate: skipped (scalar is the only supported level)\n");
  }

  if (json_path != nullptr) {
    std::string section;
    Appendf(section, "{\n    \"best_level\": \"%s\",\n",
            tensor::simd::LevelName(best));
    Appendf(section, "    \"gate\": \"%s\",\n",
            !vector_host ? "skipped" : (pass ? "pass" : "fail"));
    Appendf(section, "    \"ops\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      Appendf(section, "      {\"name\": \"%s\"", rows[i].name.c_str());
      for (std::size_t l = 0; l < levels.size(); ++l) {
        Appendf(section, ", \"gflops_%s\": %.3f",
                tensor::simd::LevelName(levels[l]), rows[i].gflops[l]);
      }
      Appendf(section, ", \"speedup\": %.3f}%s\n", rows[i].Speedup(),
              i + 1 < rows.size() ? "," : "");
    }
    Appendf(section, "    ]\n  }");
    if (SpliceKernelsJson(json_path, section)) {
      std::printf("kernels section spliced into %s\n", json_path);
    } else {
      std::printf("WARNING: could not write %s\n", json_path);
      pass = false;
    }
  }

  return pass ? 0 : 1;
}
