// Update churn through the serving front-end: delta batches (node inserts,
// edge inserts, feature updates) stream through ServingEngine::ApplyDeltas
// while query traffic runs, each batch becoming an immutable snapshot that
// is swapped in between serving batches.
//
// Two stages:
//   1. Exactness gate: for shard counts {1, 2, 4} x result cache {off, on},
//      a closed-loop query pass runs concurrently with the full delta
//      stream; once the engine has absorbed every delta, a verification
//      pass submits every test node AND every newly inserted node under
//      both QoS classes. Each response must be bit-identical to a
//      from-scratch engine built on the merged graph (MergeFromScratch) —
//      the incremental snapshot path may never change a prediction.
//   2. Churn sweep: the same closed-loop load at increasing update rates
//      (plus a no-churn baseline), reporting achieved update rate, mean
//      apply (build + swap) wall time, query p95, and staleness — how many
//      responses were served from a snapshot older than the version current
//      at their completion (stale_served).
//
// Flags: --threads N, --shards N (sweep-stage shard count; the gate always
// runs {1, 2, 4}), --update-rate N (fix the sweep to one delta-batches/sec
// rate instead of the ladder), --json PATH (splice an "update_churn"
// section into the BENCH_serving.json artifact written by
// bench_serving_qos — run after it so the splice lands on a fresh file).
// NAI_SCALE shrinks the graph.

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/stationary.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/graph/delta.h"
#include "src/serve/serving_engine.h"

namespace {

using namespace nai;

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// One sweep cell: closed-loop queries with a paced delta stream.
struct ChurnCell {
  double rate_per_sec = 0.0;  ///< requested pacing; 0 = back-to-back
  std::int64_t updates_applied = 0;
  double achieved_rate = 0.0;  ///< applied / run duration
  double mean_apply_ms = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  std::int64_t stale_served = 0;
  std::int64_t snapshot_swaps = 0;
};

ChurnCell RunChurnCell(eval::TrainedPipeline& pipeline,
                       const eval::PreparedDataset& ds, int num_shards,
                       const serve::QosPolicyTable& policies,
                       const serve::ServingOptions& options,
                       const std::vector<graph::GraphDelta>& deltas,
                       const std::vector<std::int32_t>& nodes,
                       double rate_per_sec, int threads) {
  auto engine = eval::MakeSnapshotShardedEngine(pipeline, ds, num_shards);
  serve::ServingEngine server(*engine, policies, options);

  eval::ServingLoadConfig load;
  load.arrival_rate_qps = 0.0;  // closed loop
  load.closed_loop_clients = std::max(4, 2 * threads);
  load.speed_first_fraction = 0.5;
  load.seed = 9157;  // same classes in every cell
  load.updates = deltas;
  load.updates_per_sec = rate_per_sec;
  const eval::ServingRunReport report = eval::RunServing(server, nodes, load);

  ChurnCell cell;
  cell.rate_per_sec = rate_per_sec;
  cell.updates_applied = report.updates_applied;
  cell.achieved_rate =
      report.duration_ms > 0.0
          ? 1000.0 * static_cast<double>(report.updates_applied) /
                report.duration_ms
          : 0.0;
  cell.mean_apply_ms = report.mean_update_ms;
  cell.achieved_qps = report.achieved_qps;
  cell.p50_ms = report.stats.latency.p50_ms;
  cell.p95_ms = report.stats.latency.p95_ms;
  cell.stale_served = report.stats.stale_served;
  cell.snapshot_swaps = report.stats.snapshot_swaps;
  return cell;
}

/// Splices `section` (a JSON object body) into `path` under the
/// "update_churn" key: appended to an existing object (bench_serving_qos's
/// artifact), replacing any previous update_churn section, or written as a
/// fresh object when the file is missing.
bool SpliceUpdateChurnJson(const char* path, const std::string& section) {
  std::string existing;
  if (std::FILE* in = std::fopen(path, "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) existing.append(buf, n);
    std::fclose(in);
  }
  const std::size_t prev = existing.find("\"update_churn\"");
  if (prev != std::string::npos) {
    // Rerun: drop the old section (and its leading comma) plus everything
    // after it — the closing brace is re-appended below.
    const std::size_t comma = existing.rfind(',', prev);
    existing.erase(comma == std::string::npos ? prev : comma);
  } else {
    const std::size_t close = existing.find_last_of('}');
    if (close == std::string::npos) {
      existing.clear();
    } else {
      existing.erase(close);  // strip the closing brace, keep the body
    }
  }
  while (!existing.empty() &&
         (existing.back() == '\n' || existing.back() == ' ' ||
          existing.back() == ',')) {
    existing.pop_back();
  }
  if (existing.empty()) existing = "{";

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) return false;
  const char* sep = existing.back() == '{' ? "\n" : ",\n";
  std::fprintf(out, "%s%s  \"update_churn\": %s\n}\n", existing.c_str(), sep,
               section.c_str());
  std::fclose(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = bench::ApplyThreadsFlag(argc, argv);
  const int num_shards = bench::ApplyShardsFlag(argc, argv);
  const long fixed_rate = runtime::UpdateRateFlag(argc, argv);
  const char* json_path = runtime::ConsumeStringFlag(argc, argv, "--json");
  const double scale = eval::EnvScale();

  bench::Banner("Update churn: delta ingestion vs serving — arxiv-sim");
  const eval::PreparedDataset ds = eval::Prepare(eval::ArxivSim(scale));
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  const std::vector<std::int32_t>& test = ds.split.test_nodes;

  const std::int64_t base_nodes = ds.data.graph.num_nodes();
  constexpr std::size_t kNumDeltas = 8;
  const std::vector<graph::GraphDelta> deltas = eval::MakeChurnDeltas(
      base_nodes, static_cast<std::int64_t>(ds.data.features.cols()),
      kNumDeltas, /*nodes_per_delta=*/16, /*edges_per_delta=*/32,
      /*feature_updates_per_delta=*/16, /*seed=*/77);
  std::printf("n=%lld | %zu test nodes | %d threads | %zu delta batches "
              "(16 nodes + 32 edges + 16 feature updates each)\n",
              static_cast<long long>(base_nodes), test.size(), threads,
              kNumDeltas);

  const serve::QosPolicyTable policies =
      eval::MakeQosPolicyTable(pipeline, ds, core::NapKind::kDistance);
  serve::ServingOptions options;
  options.queue_capacity = 4096;
  options.batcher.max_batch = 64;
  options.batcher.max_wait_us = 200;

  // --- Stage 1: exactness gate. --------------------------------------------
  // The from-scratch oracle: one engine on the merged graph (base + every
  // delta), stationary state and normalization rebuilt from zero. Every
  // post-churn serving response must reproduce its bits.
  const auto base_snapshot = graph::MakeSnapshot(
      ds.data.graph, ds.data.features, pipeline.model_config.gamma);
  const auto merged = graph::MergeFromScratch(*base_snapshot, deltas);
  core::StationaryState merged_stationary(merged->graph(), merged->features(),
                                          pipeline.model_config.gamma);
  core::NaiEngine reference(merged->graph(), merged->features(),
                            pipeline.model_config.gamma, *pipeline.classifiers,
                            &merged_stationary, pipeline.gates.get());

  // Verify list: every test node plus every node the churn inserted.
  std::vector<std::int32_t> verify_nodes = test;
  for (std::int64_t v = base_nodes; v < merged->num_nodes(); ++v) {
    verify_nodes.push_back(static_cast<std::int32_t>(v));
  }
  const core::InferenceResult ref_speed = reference.Infer(
      verify_nodes, policies.For(serve::QosClass::kSpeedFirst).config);
  const core::InferenceResult ref_accuracy = reference.Infer(
      verify_nodes, policies.For(serve::QosClass::kAccuracyFirst).config);

  bool exact = true;
  std::printf("\nexactness gate (churn + verify pass vs from-scratch merge, "
              "%zu verify nodes):\n",
              verify_nodes.size());
  std::printf("  %-7s %-7s %-8s %-7s %-12s %-10s\n", "shards", "cache",
              "epoch", "swaps", "mismatches", "verdict");
  for (const int shards : {1, 2, 4}) {
    for (const bool cache_on : {false, true}) {
      auto engine = eval::MakeSnapshotShardedEngine(pipeline, ds, shards);
      serve::ServingOptions cell_options = options;
      cell_options.cache.enabled = cache_on;
      serve::ServingEngine server(*engine, policies, cell_options);

      // Churn pass: queries race the full delta stream (back-to-back).
      eval::ServingLoadConfig churn;
      churn.closed_loop_clients = std::max(4, 2 * threads);
      churn.speed_first_fraction = 0.5;
      churn.seed = 4711;
      churn.updates = deltas;
      eval::RunServing(server, test, churn);

      // Verify pass on the fully merged engine: every response must match
      // the oracle bit-for-bit under its class's config.
      eval::ServingLoadConfig verify;
      verify.closed_loop_clients = std::max(4, 2 * threads);
      verify.speed_first_fraction = 0.5;
      verify.seed = 1999;
      const eval::ServingRunReport report =
          eval::RunServing(server, verify_nodes, verify);

      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < verify_nodes.size(); ++i) {
        const std::int32_t want =
            report.classes[i] == serve::QosClass::kSpeedFirst
                ? ref_speed.predictions[i]
                : ref_accuracy.predictions[i];
        if (report.predictions[i] != want) ++mismatches;
      }
      const bool cell_exact = mismatches == 0 &&
                              report.final_epoch == kNumDeltas &&
                              report.stats.snapshot_swaps ==
                                  static_cast<std::int64_t>(kNumDeltas);
      exact = exact && cell_exact;
      std::printf("  %-7d %-7s %-8llu %-7lld %-12zu %-10s\n", shards,
                  cache_on ? "on" : "off",
                  static_cast<unsigned long long>(report.final_epoch),
                  static_cast<long long>(report.stats.snapshot_swaps),
                  mismatches, cell_exact ? "bit-exact" : "MISMATCH");
    }
  }

  // --- Stage 2: churn sweep. -----------------------------------------------
  // Update rate vs query latency and staleness at the --shards deployment.
  // Rate 0 rows: a no-churn baseline (empty stream) and a back-to-back
  // stream (apply as fast as builds complete).
  std::vector<double> rates;
  if (fixed_rate > 0) {
    rates.push_back(static_cast<double>(fixed_rate));
  } else {
    rates = {2.0, 8.0, 32.0};
  }

  std::printf("\nchurn sweep (%d shards, closed loop, %zu queries per cell):\n",
              num_shards, test.size());
  std::printf("  %-10s %-9s %-10s %-11s %-10s %-9s %-9s %-7s\n",
              "rate req/s", "applied", "rate ach.", "apply ms", "qps",
              "p50 ms", "p95 ms", "stale");
  std::vector<ChurnCell> cells;
  {
    // Baseline: same load, no updates.
    ChurnCell base_cell =
        RunChurnCell(pipeline, ds, num_shards, policies, options, {}, test,
                     0.0, threads);
    std::printf("  %-10s %-9lld %-10.1f %-11.2f %-10.0f %-9.2f %-9.2f "
                "%-7lld\n",
                "none", static_cast<long long>(base_cell.updates_applied),
                base_cell.achieved_rate, base_cell.mean_apply_ms,
                base_cell.achieved_qps, base_cell.p50_ms, base_cell.p95_ms,
                static_cast<long long>(base_cell.stale_served));
    cells.push_back(base_cell);
  }
  for (const double rate : rates) {
    ChurnCell cell = RunChurnCell(pipeline, ds, num_shards, policies, options,
                                  deltas, test, rate, threads);
    std::printf("  %-10.0f %-9lld %-10.1f %-11.2f %-10.0f %-9.2f %-9.2f "
                "%-7lld\n",
                rate, static_cast<long long>(cell.updates_applied),
                cell.achieved_rate, cell.mean_apply_ms, cell.achieved_qps,
                cell.p50_ms, cell.p95_ms,
                static_cast<long long>(cell.stale_served));
    cells.push_back(cell);
  }

  // --- Optional JSON artifact: spliced into BENCH_serving.json. ------------
  if (json_path != nullptr) {
    std::string section;
    Appendf(section, "{\n    \"scale\": %.4f,\n", scale);
    Appendf(section, "    \"threads\": %d,\n", threads);
    Appendf(section, "    \"shards\": %d,\n", num_shards);
    Appendf(section, "    \"delta_batches\": %zu,\n", kNumDeltas);
    Appendf(section, "    \"exact\": %s,\n", exact ? "true" : "false");
    section += "    \"sweep\": [";
    for (std::size_t k = 0; k < cells.size(); ++k) {
      const ChurnCell& c = cells[k];
      Appendf(section,
              "%s\n      {\"rate_per_sec\": %.1f, \"updates_applied\": %lld, "
              "\"achieved_rate\": %.2f, \"mean_apply_ms\": %.3f, "
              "\"achieved_qps\": %.2f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
              "\"stale_served\": %lld, \"snapshot_swaps\": %lld}",
              k == 0 ? "" : ",", c.rate_per_sec,
              static_cast<long long>(c.updates_applied), c.achieved_rate,
              c.mean_apply_ms, c.achieved_qps, c.p50_ms, c.p95_ms,
              static_cast<long long>(c.stale_served),
              static_cast<long long>(c.snapshot_swaps));
    }
    section += "\n    ]\n  }";
    if (!SpliceUpdateChurnJson(json_path, section)) {
      std::printf("FAIL: cannot write %s\n", json_path);
      return 1;
    }
    std::printf("\nspliced update_churn section into %s\n", json_path);
  }

  if (!exact) {
    std::printf("\nFAIL: post-churn responses diverged from the from-scratch "
                "merge\n");
    return 1;
  }
  std::printf("\nall post-churn responses bit-identical to the from-scratch "
              "merge\n");
  return 0;
}
