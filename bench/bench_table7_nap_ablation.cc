// Table VII: ablation of Node-Adaptive Propagation. For each T_max in
// 2..k, compare "NAI w/o NAP" (fixed-depth propagation to T_max) against
// NAId and NAIg: accuracy, inference time, and the exit-depth distribution.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace {

using namespace nai;

void RunDataset(const eval::DatasetSpec& spec) {
  bench::Banner("Table VII — NAP ablation on " + spec.name);
  const eval::PreparedDataset ds = eval::Prepare(spec);
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  auto engine = eval::MakeEngine(pipeline, ds);
  const int k = pipeline.model_config.depth;

  // A mid-quantile threshold shared across T_max values, as in the paper's
  // per-T_max sweep.
  const auto base_setting =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance)[1];

  std::printf("%-14s %-8s %-10s %-12s %s\n", "Tmax", "method", "ACC(%)",
              "Time(ms)", "node distribution");
  for (int t_max = 2; t_max <= k; ++t_max) {
    {
      core::InferenceConfig cfg;
      cfg.nap = core::NapKind::kNone;
      cfg.t_max = t_max;
      cfg.batch_size = 500;
      const auto r = eval::RunNai(*engine, ds, ds.split.test_nodes, cfg,
                                  "w/o NAP");
      std::printf("%-14d %-8s %-10.2f %-12.1f", t_max, "w/o NAP",
                  r.row.accuracy * 100.0f, r.row.time_ms);
      eval::PrintNodeDistribution("", r.stats);
    }
    {
      core::InferenceConfig cfg = base_setting.config;
      cfg.t_min = 1;
      cfg.t_max = t_max;
      cfg.batch_size = 500;
      const auto r =
          eval::RunNai(*engine, ds, ds.split.test_nodes, cfg, "NAId");
      std::printf("%-14d %-8s %-10.2f %-12.1f", t_max, "NAId",
                  r.row.accuracy * 100.0f, r.row.time_ms);
      eval::PrintNodeDistribution("", r.stats);
    }
    {
      core::InferenceConfig cfg;
      cfg.nap = core::NapKind::kGate;
      cfg.t_min = 1;
      cfg.t_max = t_max;
      cfg.batch_size = 500;
      const auto r =
          eval::RunNai(*engine, ds, ds.split.test_nodes, cfg, "NAIg");
      std::printf("%-14d %-8s %-10.2f %-12.1f", t_max, "NAIg",
                  r.row.accuracy * 100.0f, r.row.time_ms);
      eval::PrintNodeDistribution("", r.stats);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  const double scale = nai::eval::EnvScale();
  RunDataset(nai::eval::ArxivSim(scale));
  RunDataset(nai::eval::ProductsSim(scale));
  return 0;
}
