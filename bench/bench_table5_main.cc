// Table V: main inference comparison under base model SGC on the three
// dataset presets — ACC / mMACs/node / FP mMACs/node / Time / FP Time for
// vanilla SGC, GLNN, NOSMOG, TinyGNN, Quantization, NAId and NAIg
// (speed-first setting, batch size 500).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace {

using namespace nai;

void RunDataset(const eval::DatasetSpec& spec, int shards) {
  bench::Banner("Table V — " + spec.name + " (base model SGC)");
  const eval::PreparedDataset ds = eval::Prepare(spec);
  std::printf("n=%lld m=%lld f=%zu c=%d | train=%zu labeled=%zu val=%zu test=%zu\n",
              static_cast<long long>(ds.data.graph.num_nodes()),
              static_cast<long long>(ds.data.graph.num_edges()),
              ds.data.features.cols(), ds.data.num_classes,
              ds.split.train_nodes.size(), ds.split.labeled_nodes.size(),
              ds.split.val_nodes.size(), ds.split.test_nodes.size());

  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  auto engine = eval::MakeEngine(pipeline, ds);
  // --shards N > 1 serves the NAI rows from the partitioned graph (same
  // predictions, per-shard pools); the non-NAI baselines have no graph at
  // inference time and always run unsharded.
  std::unique_ptr<core::ShardedNaiEngine> sharded;
  if (shards > 1) {
    sharded = eval::MakeShardedEngine(pipeline, ds, shards);
    std::printf("serving NAI rows from %zu shards (%d threads each)\n",
                sharded->num_shards(), sharded->threads_per_shard());
  }
  auto run_nai = [&](const core::InferenceConfig& config,
                     const std::string& name) {
    return sharded != nullptr
               ? eval::RunShardedNai(*sharded, ds, ds.split.test_nodes,
                                     config, name)
               : eval::RunNai(*engine, ds, ds.split.test_nodes, config, name);
  };
  const auto& test = ds.split.test_nodes;
  const std::size_t batch = 500;

  std::vector<eval::EvalRow> rows;
  const eval::MethodResult vanilla =
      eval::RunVanilla(*engine, ds, test, batch, "SGC");
  rows.push_back(vanilla.row);
  rows.push_back(eval::RunGlnn(pipeline, ds, test, /*hidden_multiplier=*/4).row);
  rows.push_back(eval::RunNosmog(pipeline, ds, test).row);
  rows.push_back(eval::RunTinyGnn(pipeline, ds, test).row);
  rows.push_back(eval::RunQuantized(pipeline, ds, test, batch).row);

  // Speed-first NAI settings (the paper's Table V rows).
  const auto napd_settings =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  core::InferenceConfig napd = napd_settings[0].config;
  napd.batch_size = batch;
  const eval::MethodResult naid = run_nai(napd, "NAId");
  rows.push_back(naid.row);

  const auto napg_settings =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kGate);
  core::InferenceConfig napg = napg_settings[0].config;
  napg.batch_size = batch;
  const eval::MethodResult naig = run_nai(napg, "NAIg");
  rows.push_back(naig.row);

  eval::PrintTable("inference comparison", rows);
  std::printf(
      "speedups vs vanilla SGC:  NAId  MACs %.0fx  FP MACs %.0fx  Time %.0fx "
      " FP Time %.0fx\n",
      bench::Ratio(rows[0].mmacs_per_node, naid.row.mmacs_per_node),
      bench::Ratio(rows[0].fp_mmacs_per_node, naid.row.fp_mmacs_per_node),
      bench::Ratio(rows[0].time_ms, naid.row.time_ms),
      bench::Ratio(rows[0].fp_time_ms, naid.row.fp_time_ms));
  std::printf(
      "                          NAIg  MACs %.0fx  FP MACs %.0fx  Time %.0fx "
      " FP Time %.0fx\n",
      bench::Ratio(rows[0].mmacs_per_node, naig.row.mmacs_per_node),
      bench::Ratio(rows[0].fp_mmacs_per_node, naig.row.fp_mmacs_per_node),
      bench::Ratio(rows[0].time_ms, naig.row.time_ms),
      bench::Ratio(rows[0].fp_time_ms, naig.row.fp_time_ms));
}

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  const int shards = nai::bench::ApplyShardsFlag(argc, argv);
  const double scale = nai::eval::EnvScale();
  RunDataset(nai::eval::FlickrSim(scale), shards);
  RunDataset(nai::eval::ArxivSim(scale), shards);
  RunDataset(nai::eval::ProductsSim(scale), shards);
  return 0;
}
