// Figure 5: per-node MACs and inference time as the batch size sweeps
// 100 -> 2000 on flickr-sim, for SGC, GLNN, NOSMOG, TinyGNN, Quantization,
// NAId and NAIg. The paper's observations to reproduce: TinyGNN grows
// strongly with batch size; GLNN stays flat and tiny; NAI grows mildly in
// MACs (stationary + distance work per target node) but stays flat in time.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace {

using namespace nai;

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  const int shards = nai::bench::ApplyShardsFlag(argc, argv);
  using namespace nai;
  const double scale = eval::EnvScale();
  bench::Banner("Figure 5 — batch-size sweep on flickr-sim");
  const eval::PreparedDataset ds = eval::Prepare(eval::FlickrSim(scale));
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  auto engine = eval::MakeEngine(pipeline, ds);
  // --shards N > 1: NAI rows (the only graph-serving methods) come from the
  // partitioned engine; batch size then applies per shard queue.
  std::unique_ptr<core::ShardedNaiEngine> sharded_engine;
  if (shards > 1) sharded_engine = eval::MakeShardedEngine(pipeline, ds, shards);
  auto run_nai = [&](const core::InferenceConfig& cfg, const char* name) {
    return sharded_engine != nullptr
               ? eval::RunShardedNai(*sharded_engine, ds, ds.split.test_nodes,
                                     cfg, name)
               : eval::RunNai(*engine, ds, ds.split.test_nodes, cfg, name);
  };
  const auto& test = ds.split.test_nodes;

  // Baselines whose inference is batch-independent are trained once.
  const auto glnn = eval::RunGlnn(pipeline, ds, test, 4);
  const auto nosmog = eval::RunNosmog(pipeline, ds, test);
  const auto tiny_all = eval::RunTinyGnn(pipeline, ds, test);

  const std::vector<std::size_t> batch_sizes = {100, 250, 500, 1000, 2000};
  std::printf("%-8s %-14s %14s %12s\n", "batch", "method", "mMACs/node",
              "Time(ms)");
  for (const std::size_t bs : batch_sizes) {
    const auto vanilla = eval::RunVanilla(*engine, ds, test, bs, "SGC");
    std::printf("%-8zu %-14s %14.3f %12.1f\n", bs, "SGC",
                vanilla.row.mmacs_per_node, vanilla.row.time_ms);

    const auto quant = eval::RunQuantized(pipeline, ds, test, bs);
    std::printf("%-8zu %-14s %14.3f %12.1f\n", bs, "Quantization",
                quant.row.mmacs_per_node, quant.row.time_ms);

    const auto napd_settings =
        eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
    core::InferenceConfig cfg_d = napd_settings[0].config;
    cfg_d.batch_size = bs;
    const auto naid = run_nai(cfg_d, "NAId");
    std::printf("%-8zu %-14s %14.3f %12.1f\n", bs, "NAId",
                naid.row.mmacs_per_node, naid.row.time_ms);

    core::InferenceConfig cfg_g = cfg_d;
    cfg_g.nap = core::NapKind::kGate;
    const auto naig = run_nai(cfg_g, "NAIg");
    std::printf("%-8zu %-14s %14.3f %12.1f\n", bs, "NAIg",
                naig.row.mmacs_per_node, naig.row.time_ms);
  }
  // Batch-independent rows (MLP baselines classify each node in isolation;
  // TinyGNN fetches 1-hop peers per query set).
  std::printf("%-8s %-14s %14.3f %12.1f\n", "any", "GLNN",
              glnn.row.mmacs_per_node, glnn.row.time_ms);
  std::printf("%-8s %-14s %14.3f %12.1f\n", "any", "NOSMOG",
              nosmog.row.mmacs_per_node, nosmog.row.time_ms);
  std::printf("%-8s %-14s %14.3f %12.1f\n", "any", "TinyGNN",
              tiny_all.row.mmacs_per_node, tiny_all.row.time_ms);
  return 0;
}
