#ifndef NAI_BENCH_GENERALIZATION_COMMON_H_
#define NAI_BENCH_GENERALIZATION_COMMON_H_

// Shared driver for Tables IX / X / XI: the Table-V comparison repeated on
// flickr-sim with a different Scalable GNN base model (SIGN, S2GC, GAMLP),
// demonstrating that the NAI framework is model-agnostic.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace nai::bench {

inline void RunGeneralization(models::ModelKind kind, int depth,
                              const char* table_name) {
  Banner(std::string(table_name) + " — base model " +
         models::ModelKindName(kind) + " on flickr-sim");
  eval::DatasetSpec spec = eval::FlickrSim(eval::EnvScale());
  const eval::PreparedDataset ds = eval::Prepare(spec);

  eval::PipelineConfig cfg = BenchPipelineConfig(kind);
  cfg.depth = depth;
  // The wider per-depth inputs of SIGN make full-length distillation slow;
  // the budgets below keep each generalization bench around a minute.
  cfg.distill.base_epochs = 100;
  cfg.distill.single_epochs = 50;
  cfg.distill.multi_epochs = 40;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, cfg);
  auto engine = eval::MakeEngine(pipeline, ds);
  const auto& test = ds.split.test_nodes;
  const std::size_t batch = 500;

  std::vector<eval::EvalRow> rows;
  const auto vanilla = eval::RunVanilla(*engine, ds, test, batch,
                                        models::ModelKindName(kind));
  rows.push_back(vanilla.row);
  rows.push_back(eval::RunGlnn(pipeline, ds, test, 4).row);
  rows.push_back(eval::RunNosmog(pipeline, ds, test).row);
  rows.push_back(eval::RunTinyGnn(pipeline, ds, test).row);
  rows.push_back(eval::RunQuantized(pipeline, ds, test, batch).row);

  const auto napd =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  core::InferenceConfig cfg_d = napd[0].config;
  cfg_d.batch_size = batch;
  const auto naid = eval::RunNai(*engine, ds, test, cfg_d, "NAId");
  rows.push_back(naid.row);

  const auto napg =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kGate);
  core::InferenceConfig cfg_g = napg[0].config;
  cfg_g.batch_size = batch;
  const auto naig = eval::RunNai(*engine, ds, test, cfg_g, "NAIg");
  rows.push_back(naig.row);

  eval::PrintTable("inference comparison", rows);
  std::printf(
      "NAId speedups vs vanilla: MACs %.0fx  FP MACs %.0fx  Time %.0fx  FP "
      "Time %.0fx\n",
      Ratio(rows[0].mmacs_per_node, naid.row.mmacs_per_node),
      Ratio(rows[0].fp_mmacs_per_node, naid.row.fp_mmacs_per_node),
      Ratio(rows[0].time_ms, naid.row.time_ms),
      Ratio(rows[0].fp_time_ms, naid.row.fp_time_ms));
}

}  // namespace nai::bench

#endif  // NAI_BENCH_GENERALIZATION_COMMON_H_
