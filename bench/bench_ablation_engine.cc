// Engine design-choice ablations (DESIGN.md §4): quantifies the impact of
//  (1) the exit criterion: absolute Eq.-8 distance vs the scale-free
//      relative distance the harness deploys,
//  (2) frontier shrinking: re-deriving the supporting set from the
//      still-active nodes after each exit round,
//  (3) mapped propagation vs per-batch induced-submatrix materialization.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/graph/normalize.h"
#include "src/tensor/ops.h"
#include "src/graph/sampler.h"

namespace {

using namespace nai;

void ExitCriterionAblation(core::NaiEngine& engine,
                           eval::TrainedPipeline& pipeline,
                           const eval::PreparedDataset& ds) {
  std::printf("\n-- exit criterion: absolute (Eq. 8) vs relative --\n");
  const auto settings =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  core::InferenceConfig rel = settings[1].config;
  rel.batch_size = 500;
  const auto r_rel =
      eval::RunNai(engine, ds, ds.split.test_nodes, rel, "relative");

  // Match the absolute threshold so both run at (approximately) the same
  // average depth: scale the relative threshold by the median stationary
  // norm of the validation nodes.
  const tensor::Matrix xinf =
      pipeline.full_stationary->RowsForNodes(ds.split.val_nodes);
  std::vector<float> norms = tensor::RowL2Norms(xinf);
  std::nth_element(norms.begin(), norms.begin() + norms.size() / 2,
                   norms.end());
  core::InferenceConfig abs = rel;
  abs.relative_distance = false;
  abs.threshold = rel.threshold * norms[norms.size() / 2];
  const auto r_abs =
      eval::RunNai(engine, ds, ds.split.test_nodes, abs, "absolute");

  std::printf("relative: ACC %.2f%%  avg depth %.2f\n",
              r_rel.row.accuracy * 100, r_rel.stats.average_depth());
  std::printf("absolute: ACC %.2f%%  avg depth %.2f\n",
              r_abs.row.accuracy * 100, r_abs.stats.average_depth());
}

void ShrinkAblation(core::NaiEngine& engine, eval::TrainedPipeline& pipeline,
                    const eval::PreparedDataset& ds) {
  std::printf("\n-- frontier shrinking after early exits --\n");
  const auto settings =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  for (const bool shrink : {true, false}) {
    core::InferenceConfig cfg = settings[2].config;  // accuracy-first
    cfg.batch_size = 500;
    cfg.shrink_active_support = shrink;
    const auto r = eval::RunNai(engine, ds, ds.split.test_nodes, cfg,
                                shrink ? "shrink" : "no-shrink");
    std::printf("%-10s ACC %.2f%%  FP mMACs/node %.3f  FP time %.1f ms\n",
                shrink ? "shrink" : "no-shrink", r.row.accuracy * 100,
                r.row.fp_mmacs_per_node, r.row.fp_time_ms);
  }
}

void SamplerAblation(const eval::PreparedDataset& ds, float gamma) {
  std::printf("\n-- supporting-set extraction: mapped vs induced CSR --\n");
  const graph::Csr adj = graph::NormalizedAdjacency(ds.data.graph, gamma);
  graph::SupportSampler sampler(adj);
  std::vector<std::int32_t> batch(ds.split.test_nodes.begin(),
                                  ds.split.test_nodes.begin() + 500);
  const int depth = ds.default_depth;
  constexpr int kReps = 10;
  eval::Timer t_mapped;
  for (int i = 0; i < kReps; ++i) {
    sampler.SampleMapped(batch, depth);
  }
  const double mapped_ms = t_mapped.ElapsedMs() / kReps;
  eval::Timer t_full;
  for (int i = 0; i < kReps; ++i) {
    sampler.Sample(batch, depth);
  }
  const double full_ms = t_full.ElapsedMs() / kReps;
  std::printf("mapped (BFS only):       %8.2f ms/batch\n", mapped_ms);
  std::printf("induced CSR per batch:   %8.2f ms/batch  (%.1fx slower)\n",
              full_ms, full_ms / mapped_ms);
}

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  using namespace nai;
  bench::Banner("Engine design-choice ablations (arxiv-sim)");
  const eval::PreparedDataset ds =
      eval::Prepare(eval::ArxivSim(eval::EnvScale()));
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  auto engine = eval::MakeEngine(pipeline, ds);

  ExitCriterionAblation(*engine, pipeline, ds);
  ShrinkAblation(*engine, pipeline, ds);
  SamplerAblation(ds, pipeline.model_config.gamma);
  return 0;
}
