// Table XI: NAI generalization to GAMLP (Zhang et al.) on flickr-sim.

#include "bench/generalization_common.h"

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  nai::bench::RunGeneralization(nai::models::ModelKind::kGamlp, 5,
                                "Table XI");
  return 0;
}
