// Figure 4: accuracy-vs-inference-time trade-off. For each dataset, prints
// (time, accuracy) points for vanilla SGC, the four baselines, and the
// three NAId / NAIg settings — the series plotted in the paper's figure.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace {

using namespace nai;

void Point(const char* name, double time_ms, float acc) {
  std::printf("%-12s time_ms=%10.1f  acc=%.2f%%\n", name, time_ms,
              acc * 100.0f);
}

void RunDataset(const eval::DatasetSpec& spec) {
  bench::Banner("Figure 4 — accuracy/latency trade-off on " + spec.name);
  const eval::PreparedDataset ds = eval::Prepare(spec);
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  auto engine = eval::MakeEngine(pipeline, ds);
  const auto& test = ds.split.test_nodes;
  const std::size_t batch = 500;

  const auto vanilla = eval::RunVanilla(*engine, ds, test, batch, "SGC");
  Point("SGC", vanilla.row.time_ms, vanilla.row.accuracy);
  const auto glnn = eval::RunGlnn(pipeline, ds, test, 4);
  Point("GLNN", glnn.row.time_ms, glnn.row.accuracy);
  const auto nosmog = eval::RunNosmog(pipeline, ds, test);
  Point("NOSMOG", nosmog.row.time_ms, nosmog.row.accuracy);
  const auto tiny = eval::RunTinyGnn(pipeline, ds, test);
  Point("TinyGNN", tiny.row.time_ms, tiny.row.accuracy);
  const auto quant = eval::RunQuantized(pipeline, ds, test, batch);
  Point("Quantization", quant.row.time_ms, quant.row.accuracy);

  for (const auto nap : {core::NapKind::kDistance, core::NapKind::kGate}) {
    const char* suffix = nap == core::NapKind::kDistance ? "d" : "g";
    const auto settings = eval::MakeDefaultSettings(pipeline, ds, nap);
    for (std::size_t i = 0; i < settings.size(); ++i) {
      core::InferenceConfig cfg = settings[i].config;
      cfg.batch_size = batch;
      const auto r = eval::RunNai(*engine, ds, test, cfg, settings[i].name);
      char name[32];
      std::snprintf(name, sizeof(name), "NAI%zu%s", i + 1, suffix);
      Point(name, r.row.time_ms, r.row.accuracy);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  const double scale = nai::eval::EnvScale();
  RunDataset(nai::eval::FlickrSim(scale));
  RunDataset(nai::eval::ArxivSim(scale));
  RunDataset(nai::eval::ProductsSim(scale));
  return 0;
}
