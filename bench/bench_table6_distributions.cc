// Table VI: node distributions across exit depths for NAId and NAIg under
// the three canonical settings (speed-first / balanced / accuracy-first) on
// each dataset. Rows read left (depth 1) to right (depth T_max).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace {

using namespace nai;

void RunDataset(const eval::DatasetSpec& spec) {
  bench::Banner("Table VI — node distributions on " + spec.name);
  const eval::PreparedDataset ds = eval::Prepare(spec);
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  auto engine = eval::MakeEngine(pipeline, ds);

  for (const auto nap : {core::NapKind::kDistance, core::NapKind::kGate}) {
    const char* suffix = nap == core::NapKind::kDistance ? "d" : "g";
    const auto settings = eval::MakeDefaultSettings(pipeline, ds, nap);
    for (std::size_t i = 0; i < settings.size(); ++i) {
      core::InferenceConfig cfg = settings[i].config;
      cfg.batch_size = 500;
      const eval::MethodResult r = eval::RunNai(
          *engine, ds, ds.split.test_nodes, cfg,
          settings[i].name + suffix);
      std::printf("NAI%zu%s  ACC %.2f%%  ", i + 1, suffix,
                  r.row.accuracy * 100.0f);
      eval::PrintNodeDistribution("", r.stats);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  const double scale = nai::eval::EnvScale();
  RunDataset(nai::eval::FlickrSim(scale));
  RunDataset(nai::eval::ArxivSim(scale));
  RunDataset(nai::eval::ProductsSim(scale));
  return 0;
}
