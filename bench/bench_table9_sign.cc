// Table IX: NAI generalization to SIGN (Frasca et al.) on flickr-sim.

#include "bench/generalization_common.h"

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  nai::bench::RunGeneralization(nai::models::ModelKind::kSign, 5,
                                "Table IX");
  return 0;
}
