// Table VIII: ablation of Inception Distillation. Reports the accuracy of
// the weakest classifier f^(1) (evaluated at fixed depth 1 on the test set)
// under four training regimes: no distillation ("w/o ID"), single-scale
// only ("w/o MS"), multi-scale only ("w/o SS"), and the full pipeline.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace {

using namespace nai;

float F1Accuracy(eval::TrainedPipeline& pipeline,
                 const eval::PreparedDataset& ds) {
  auto engine = eval::MakeEngine(pipeline, ds);
  core::InferenceConfig cfg;
  cfg.nap = core::NapKind::kNone;
  cfg.t_max = 1;  // force everything through f^(1)
  cfg.batch_size = 500;
  return eval::RunNai(*engine, ds, ds.split.test_nodes, cfg, "f1")
      .row.accuracy;
}

void RunDataset(const eval::DatasetSpec& spec, float* out_row) {
  const eval::PreparedDataset ds = eval::Prepare(spec);

  struct Variant {
    const char* name;
    bool single;
    bool multi;
  };
  const Variant variants[] = {
      {"NAI w/o ID", false, false},
      {"NAI w/o MS", true, false},
      {"NAI w/o SS", false, true},
      {"NAI", true, true},
  };
  for (int vi = 0; vi < 4; ++vi) {
    eval::PipelineConfig cfg = bench::BenchPipelineConfig();
    cfg.train_gates = false;  // gates irrelevant for f^(1) quality
    cfg.distill.enable_single = variants[vi].single;
    cfg.distill.enable_multi = variants[vi].multi;
    eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, cfg);
    out_row[vi] = F1Accuracy(pipeline, ds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  using namespace nai;
  const double scale = eval::EnvScale();
  bench::Banner("Table VIII — Inception Distillation ablation (ACC of f^(1), %)");

  // Half-scale presets: the ablation trains 12 full pipelines and the
  // f^(1)-quality comparison is scale-insensitive.
  const eval::DatasetSpec specs[] = {eval::FlickrSim(0.5 * scale),
                                     eval::ArxivSim(0.5 * scale),
                                     eval::ProductsSim(0.5 * scale)};
  float acc[3][4];
  for (int d = 0; d < 3; ++d) RunDataset(specs[d], acc[d]);

  const char* names[] = {"NAI w/o ID", "NAI w/o MS", "NAI w/o SS", "NAI"};
  std::printf("%-12s %12s %12s %14s\n", "", "Flickr-sim", "Arxiv-sim",
              "Products-sim");
  for (int v = 0; v < 4; ++v) {
    std::printf("%-12s %12.2f %12.2f %14.2f\n", names[v], acc[0][v] * 100,
                acc[1][v] * 100, acc[2][v] * 100);
  }
  return 0;
}
