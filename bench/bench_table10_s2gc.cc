// Table X: NAI generalization to S2GC (Zhu & Koniusz) on flickr-sim.
// The paper uses k = 10 for S2GC (Table IV).

#include "bench/generalization_common.h"

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  nai::bench::RunGeneralization(nai::models::ModelKind::kS2gc, 10,
                                "Table X");
  return 0;
}
