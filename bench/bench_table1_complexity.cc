// Table I: the inference computational-complexity model. For each Scalable
// GNN family, prints the paper's symbolic formulas, the analytic MAC counts
// they predict on arxiv-sim, and the MACs the engine actually measured —
// validating that the implementation's cost matches the model.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/complexity.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"
#include "src/eval/mac_counter.h"

namespace {

using namespace nai;

void RunFamily(models::ModelKind kind, const eval::PreparedDataset& ds) {
  eval::PipelineConfig cfg = bench::BenchPipelineConfig(kind);
  cfg.depth = 4;
  cfg.distill.base_epochs = 60;
  cfg.distill.single_epochs = 40;
  cfg.distill.multi_epochs = 0;
  cfg.distill.enable_multi = false;
  cfg.gate.epochs = 20;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, cfg);
  auto engine = eval::MakeEngine(pipeline, ds);
  const auto& test = ds.split.test_nodes;

  const auto vanilla = eval::RunVanilla(*engine, ds, test, 500,
                                        models::ModelKindName(kind));
  const auto settings =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  core::InferenceConfig icfg = settings[1].config;
  icfg.batch_size = 500;
  const auto nai = eval::RunNai(*engine, ds, test, icfg, "NAId");

  // Analytic predictions from the measured q and the touched-edge count.
  const std::int64_t p_layers =
      static_cast<std::int64_t>(cfg.hidden_dims.size()) + 1;
  core::ComplexityParams params = eval::ParamsFromStats(
      nai.stats, ds.data.features.cols(), p_layers, icfg.t_max);
  core::ComplexityParams vparams = eval::ParamsFromStats(
      vanilla.stats, ds.data.features.cols(), p_layers,
      pipeline.model_config.depth);
  vparams.q = vparams.k;  // vanilla propagates everything to k

  std::printf("\n%s\n", models::ModelKindName(kind).c_str());
  std::printf("  vanilla %-28s analytic %12lld  measured %12lld\n",
              core::VanillaFormula(kind).c_str(),
              static_cast<long long>(core::VanillaMacs(kind, vparams)),
              static_cast<long long>(vanilla.stats.total_macs()));
  std::printf("  NAI     %-28s analytic %12lld  measured %12lld  (q=%.2f)\n",
              core::NaiFormula(kind).c_str(),
              static_cast<long long>(core::NaiMacs(kind, params, true)),
              static_cast<long long>(nai.stats.total_macs()), params.q);
}

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  using namespace nai;
  bench::Banner("Table I — complexity model vs measured MACs (arxiv-sim)");
  eval::DatasetSpec spec = eval::ArxivSim(0.5 * eval::EnvScale());
  const eval::PreparedDataset ds = eval::Prepare(spec);
  RunFamily(models::ModelKind::kSgc, ds);
  RunFamily(models::ModelKind::kSign, ds);
  RunFamily(models::ModelKind::kS2gc, ds);
  RunFamily(models::ModelKind::kGamlp, ds);
  std::printf(
      "\nNote: the analytic NAI column uses the rank-one stationary term "
      "(nf)\nthat this implementation executes instead of the paper's n^2 f "
      "—\nsee DESIGN.md §2 and StationaryState.\n");
  return 0;
}
