// Out-of-core serving: the mmap storage backend against the in-memory
// baseline.
//
// Two stages:
//   1. Exactness gate: on a Chung-Lu synthetic graph, engines over an mmap
//      store must reproduce the mem engines bit-for-bit — predictions,
//      exit depths, MAC counters — across shard counts {1, 2, 4} plus the
//      identity (out-of-core) partition, under all three QoS-shaped
//      configs (speed-first, accuracy-first, INT8 throughput-first) mixed
//      in one InferMixed stream.
//   2. Scaled out-of-core run: graph::GenerateScaled streams a power-law
//      ring+chords graph (kept >= 1M nodes at NAI_SCALE = 1) straight into
//      the on-disk layout without materializing it in RAM; a one-shard
//      identity-partition ServingEngine serves a Zipf-skewed closed loop
//      from the mapped file, and per graph size we record the mapped vs
//      mincore-resident store bytes (the working set), cache hit ratio and
//      latency percentiles.
//
// Flags: --threads N, --json PATH (default BENCH_outofcore.json),
// --requests N (Zipf draws per scaled cell). NAI_SCALE shrinks the scaled
// graph sizes.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/inference.h"
#include "src/core/sharded_inference.h"
#include "src/eval/datasets.h"
#include "src/graph/delta.h"
#include "src/graph/generators.h"
#include "src/graph/shard.h"
#include "src/serve/qos.h"
#include "src/serve/serving_engine.h"
#include "src/storage/mmap_store.h"

namespace {

using namespace nai;

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::string TempStorePath(const char* tag) {
  return "/tmp/nai_bench_outofcore_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

/// The three QoS-class-shaped configs of serve::DefaultQosPolicyTable.
std::vector<core::InferenceConfig> QosConfigs(int k) {
  const serve::QosPolicyTable table = serve::DefaultQosPolicyTable(k);
  return {table.For(serve::QosClass::kSpeedFirst).config,
          table.For(serve::QosClass::kAccuracyFirst).config,
          table.For(serve::QosClass::kThroughputFirst).config};
}

// --- Stage 1: exactness gate -----------------------------------------------

bool RunExactnessGate(int k) {
  graph::GeneratorConfig gen;
  gen.num_nodes = 2000;
  gen.num_edges = 10000;
  gen.feature_dim = 32;
  gen.num_classes = 8;
  gen.seed = 13;
  graph::SyntheticDataset ds = graph::GenerateDataset(gen);

  models::ModelConfig mc;
  mc.kind = models::ModelKind::kSgc;
  mc.depth = k;
  mc.gamma = 0.5f;
  mc.feature_dim = ds.features.cols();
  mc.num_classes = ds.num_classes;
  mc.hidden_dims = {32};
  core::ClassifierStack classifiers(mc, 99);
  core::QuantizedClassifierStack quantized(classifiers);

  const auto mem_snapshot = graph::MakeSnapshot(std::move(ds.graph),
                                                std::move(ds.features), 0.5f);
  const std::string path = TempStorePath("gate");
  storage::SaveStore(*mem_snapshot->graph_store, *mem_snapshot->feature_store,
                     path);
  auto store = std::make_shared<storage::MmapStore>(path);
  ::unlink(path.c_str());
  const auto mmap_snapshot = graph::MakeSnapshotFromStore(store, store);

  // The mixed QoS query stream every cell must answer identically.
  const std::vector<core::InferenceConfig> configs = QosConfigs(k);
  std::vector<core::ConfiguredQuery> queries;
  for (std::int64_t v = 0; v < mem_snapshot->num_nodes(); ++v) {
    queries.push_back({static_cast<std::int32_t>(v),
                       &configs[static_cast<std::size_t>(v) % configs.size()]});
  }

  core::EngineOptions options;
  options.quantized = &quantized;
  core::NaiEngine reference =
      core::NaiEngine::FromSnapshot(mem_snapshot, classifiers, options);
  const core::InferenceResult want = reference.InferMixed(queries);

  auto check = [&](const char* label, const core::InferenceResult& got) {
    const bool ok = got.predictions == want.predictions &&
                    got.exit_depths == want.exit_depths &&
                    got.stats.exits_at_depth == want.stats.exits_at_depth;
    std::printf("  %-22s %s\n", label, ok ? "bit-exact" : "MISMATCH");
    return ok;
  };

  bool exact = true;
  std::printf("exactness gate (mmap vs mem, %lld nodes, 3 QoS configs):\n",
              static_cast<long long>(mem_snapshot->num_nodes()));
  {
    core::NaiEngine unsharded =
        core::NaiEngine::FromSnapshot(mmap_snapshot, classifiers, options);
    exact = check("unsharded", unsharded.InferMixed(queries)) && exact;
  }
  for (const int shards : {1, 2, 4}) {
    core::ShardedNaiEngine engine(
        mmap_snapshot, graph::MakeShards(mmap_snapshot->adj(), shards, k),
        classifiers, nullptr);
    engine.AttachQuantizedClassifiers(&quantized);
    char label[32];
    std::snprintf(label, sizeof label, "%d shard(s)", shards);
    exact = check(label, engine.InferMixed(queries)) && exact;
  }
  {
    core::ShardedNaiEngine identity(
        mmap_snapshot, graph::IdentityShards(mmap_snapshot->num_nodes(), k),
        classifiers, nullptr);
    identity.AttachQuantizedClassifiers(&quantized);
    exact = check("identity (out-of-core)", identity.InferMixed(queries)) &&
            exact;
  }
  return exact;
}

// --- Stage 2: scaled out-of-core serving -----------------------------------

struct ScaledCell {
  std::int64_t nodes = 0;
  std::int64_t edges = 0;
  std::int64_t file_bytes = 0;
  std::int64_t mapped_bytes = 0;
  std::int64_t resident_bytes = 0;
  bool residency_exact = false;
  double cache_hit_ratio = 0.0;
  std::int64_t requests = 0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

ScaledCell RunScaledCell(std::int64_t num_nodes, std::size_t num_requests,
                         int k, int threads) {
  graph::ScaledGraphConfig cfg;
  cfg.num_nodes = num_nodes;
  cfg.feature_dim = 32;
  cfg.seed = 4242;
  const std::string path = TempStorePath("scaled");
  const std::int64_t m = graph::GenerateScaled(cfg, path);

  // Open lazily: verifying the data checksum would fault every page in and
  // make the residency measurement meaningless.
  storage::MmapStore::Options lazy;
  lazy.verify_data = false;
  auto store = std::make_shared<storage::MmapStore>(path, lazy);
  // The generator just wrote the whole file through the page cache; evict
  // it so the serving run faults in only the pages the traffic touches and
  // the resident-set numbers measure the true working set.
  const int raw_fd = ::open(path.c_str(), O_RDONLY);
  if (raw_fd >= 0) {
    ::posix_fadvise(raw_fd, 0, 0, POSIX_FADV_DONTNEED);
    ::close(raw_fd);
  }
  ::unlink(path.c_str());
  store->Advise(storage::AccessHint::kRandom);
  const auto snapshot = graph::MakeSnapshotFromStore(store, store);

  models::ModelConfig mc;
  mc.kind = models::ModelKind::kSgc;
  mc.depth = k;
  mc.gamma = cfg.gamma;
  mc.feature_dim = static_cast<std::size_t>(cfg.feature_dim);
  mc.num_classes = 8;
  mc.hidden_dims = {32};
  core::ClassifierStack classifiers(mc, 7);
  core::QuantizedClassifierStack quantized(classifiers);

  // The out-of-core deployment: one identity shard over the mapped store —
  // no induced submatrix, no gathered feature copies.
  core::ShardedNaiEngine engine(
      snapshot, graph::IdentityShards(num_nodes, k), classifiers, nullptr,
      /*use_stationary=*/true, threads);
  engine.AttachQuantizedClassifiers(&quantized);
  serve::ServingOptions options;
  options.queue_capacity = 8192;
  serve::ServingEngine server(engine, serve::DefaultQosPolicyTable(k),
                              options);

  std::vector<std::int32_t> nodes(static_cast<std::size_t>(num_nodes));
  for (std::int64_t v = 0; v < num_nodes; ++v) {
    nodes[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(v);
  }
  eval::ServingLoadConfig load;
  load.closed_loop_clients = std::max(4, 2 * threads);
  load.speed_first_fraction = 0.4;
  load.throughput_fraction = 0.2;
  load.zipf_alpha = 0.9;
  load.num_requests = num_requests;
  load.seed = 31;
  const eval::ServingRunReport report = eval::RunServing(server, nodes, load);
  const serve::ServingStatsSnapshot stats = server.Stats();

  ScaledCell cell;
  cell.nodes = num_nodes;
  cell.edges = m;
  cell.file_bytes =
      storage::MmapLayout::Make(num_nodes, 2 * m, cfg.feature_dim).file_size;
  cell.mapped_bytes = stats.store_mapped_bytes;
  cell.resident_bytes = stats.store_resident_bytes;
  cell.residency_exact = stats.store_residency_exact;
  cell.cache_hit_ratio = stats.cache_hit_ratio;
  cell.requests = stats.completed;
  cell.achieved_qps = report.achieved_qps;
  cell.p50_ms = stats.latency.p50_ms;
  cell.p95_ms = stats.latency.p95_ms;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = bench::ApplyThreadsFlag(argc, argv);
  const char* json_path = runtime::ConsumeStringFlag(argc, argv, "--json");
  if (json_path == nullptr) json_path = "BENCH_outofcore.json";
  const long requests_flag = runtime::ConsumeIntFlag(argc, argv, "--requests");
  const double scale = eval::EnvScale();
  constexpr int kDepth = 3;

  bench::Banner("Out-of-core storage: mmap store vs in-memory baseline");

  const bool exact = RunExactnessGate(kDepth);

  // Scaled sizes: 2^18 and 2^20 nodes at scale 1 (the acceptance floor of
  // one million nodes), shrunk by NAI_SCALE for smoke runs.
  std::vector<std::int64_t> sizes;
  for (const std::int64_t base : {std::int64_t{1} << 18, std::int64_t{1} << 20}) {
    sizes.push_back(std::max<std::int64_t>(
        64, static_cast<std::int64_t>(static_cast<double>(base) * scale)));
  }
  const std::size_t requests =
      requests_flag > 0 ? static_cast<std::size_t>(requests_flag)
                        : static_cast<std::size_t>(
                              std::max<std::int64_t>(2000, sizes.back() / 64));

  std::printf("\nscaled out-of-core serving (identity shard, Zipf 0.9, "
              "%zu requests per cell):\n",
              requests);
  std::printf("  %-10s %-10s %-11s %-11s %-9s %-8s %-9s %-9s %-9s\n", "nodes",
              "edges", "mapped MB", "res. MB", "res. %", "hit %", "qps",
              "p50 ms", "p95 ms");
  std::vector<ScaledCell> cells;
  for (const std::int64_t n : sizes) {
    const ScaledCell cell = RunScaledCell(n, requests, kDepth, threads);
    const double frac =
        cell.mapped_bytes > 0 ? 100.0 * static_cast<double>(cell.resident_bytes) /
                                    static_cast<double>(cell.mapped_bytes)
                              : 0.0;
    std::printf("  %-10lld %-10lld %-11.1f %-11.1f %-9.1f %-8.1f %-9.0f "
                "%-9.3f %-9.3f\n",
                static_cast<long long>(cell.nodes),
                static_cast<long long>(cell.edges),
                static_cast<double>(cell.mapped_bytes) / 1048576.0,
                static_cast<double>(cell.resident_bytes) / 1048576.0, frac,
                100.0 * cell.cache_hit_ratio, cell.achieved_qps, cell.p50_ms,
                cell.p95_ms);
    cells.push_back(cell);
  }

  // --- JSON artifact. --------------------------------------------------------
  std::string json = "{\n";
  Appendf(json, "  \"scale\": %.4f,\n", scale);
  Appendf(json, "  \"threads\": %d,\n", threads);
  Appendf(json, "  \"exact\": %s,\n", exact ? "true" : "false");
  json += "  \"scaled\": [";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ScaledCell& c = cells[i];
    Appendf(json,
            "%s\n    {\"nodes\": %lld, \"edges\": %lld, \"file_bytes\": %lld, "
            "\"mapped_bytes\": %lld, \"resident_bytes\": %lld, "
            "\"residency_exact\": %s, \"cache_hit_ratio\": %.4f, "
            "\"requests\": %lld, \"achieved_qps\": %.2f, \"p50_ms\": %.4f, "
            "\"p95_ms\": %.4f}",
            i == 0 ? "" : ",", static_cast<long long>(c.nodes),
            static_cast<long long>(c.edges),
            static_cast<long long>(c.file_bytes),
            static_cast<long long>(c.mapped_bytes),
            static_cast<long long>(c.resident_bytes),
            c.residency_exact ? "true" : "false", c.cache_hit_ratio,
            static_cast<long long>(c.requests), c.achieved_qps, c.p50_ms,
            c.p95_ms);
  }
  json += "\n  ]\n}\n";
  if (std::FILE* out = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path);
  } else {
    std::printf("FAIL: cannot write %s\n", json_path);
    return 1;
  }

  if (!exact) {
    std::printf("\nFAIL: mmap-backed engines diverged from the in-memory "
                "baseline\n");
    return 1;
  }
  std::printf("\nmmap-backed serving bit-identical to the in-memory baseline\n");
  return 0;
}
