#ifndef NAI_BENCH_BENCH_UTIL_H_
#define NAI_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/eval/harness.h"
#include "src/runtime/flags.h"

namespace nai::bench {

/// Shared CLI entry for every bench target: consumes the `--threads N`
/// flag (default-pool size; NAI_THREADS is the env-side equivalent) and
/// the `--store B` flag (snapshot storage backend, exported as NAI_STORE
/// for the harness factories), and prints them so logged runs are
/// self-describing. The store line is announced only off the default so
/// mem-backend logs stay byte-identical to previous releases.
inline int ApplyThreadsFlag(int& argc, char** argv) {
  const int threads = runtime::ApplyThreadsFlag(argc, argv);
  std::printf("threads: %d\n", threads);
  const char* store = runtime::ApplyStoreFlag(argc, argv);
  if (std::string(store) != "mem") std::printf("store: %s\n", store);
  return threads;
}

/// Consumes the `--shards N` flag (serving-graph shard count, default 1 =
/// unsharded). Announced only when sharding is on so unsharded logs stay
/// byte-identical to previous releases.
inline int ApplyShardsFlag(int& argc, char** argv) {
  const int shards = runtime::ShardsFlag(argc, argv);
  if (shards > 1) std::printf("shards: %d\n", shards);
  return shards;
}

/// Training budgets used by the bench binaries: smaller than the library
/// defaults so a full `for b in build/bench/*` sweep stays in minutes, but
/// large enough for the paper's qualitative results to reproduce.
inline eval::PipelineConfig BenchPipelineConfig(
    models::ModelKind kind = models::ModelKind::kSgc) {
  eval::PipelineConfig cfg;
  cfg.kind = kind;
  cfg.hidden_dims = {64};
  cfg.distill.base_epochs = 120;
  cfg.distill.single_epochs = 70;
  cfg.distill.multi_epochs = 50;
  cfg.distill.learning_rate = 1e-2f;
  cfg.distill.temperature_single = 1.2f;
  cfg.distill.lambda_single = 0.5f;
  cfg.distill.temperature_multi = 1.5f;
  cfg.distill.lambda_multi = 0.8f;
  cfg.distill.ensemble_size = 3;
  cfg.gate.epochs = 80;
  return cfg;
}

inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Speedup annotation like the paper's "(75x)" brackets.
inline double Ratio(double base, double value) {
  return value > 0.0 ? base / value : 0.0;
}

}  // namespace nai::bench

#endif  // NAI_BENCH_BENCH_UTIL_H_
