// Shard-count scaling of the serving engine: the same trained NAI
// deployment served unsharded and from {1, 2, 4, 8} graph shards, each
// shard on its own thread-pool slice, with inter-batch parallelism filling
// every slice on both sides (so the comparison is core-for-core fair).
// Reports the partition build cost, halo overhead (how much of each shard
// is replicated neighborhood), NAId and vanilla serving latency per shard
// count, and verifies that every sharded run predicts bit-identically to
// the unsharded engine.
//
// What sharding buys is *isolation* — disjoint pools, zero cross-shard
// traffic, per-shard admission — not single-stream latency: this bench
// quantifies its price on one mixed query stream. Two costs grow with the
// shard count: the halo fraction (boundary neighborhoods replicated into
// each shard), and the batch split (queries co-batched in the unsharded
// engine land in different shards, so shared supporting-set work is
// recomputed per shard — visible as the propagation-MAC ratio).

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace {

using namespace nai;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = bench::ApplyThreadsFlag(argc, argv);
  const double scale = eval::EnvScale();
  bench::Banner("Shard scaling — arxiv-sim serving graph");
  const eval::PreparedDataset ds = eval::Prepare(eval::ArxivSim(scale));
  eval::TrainedPipeline pipeline =
      eval::TrainPipeline(ds, bench::BenchPipelineConfig());
  const auto& test = ds.split.test_nodes;
  std::printf("n=%lld m=%lld | %zu test nodes | %d pool threads\n",
              static_cast<long long>(ds.data.graph.num_nodes()),
              static_cast<long long>(ds.data.graph.num_edges()), test.size(),
              threads);

  auto engine = eval::MakeEngine(pipeline, ds);
  const auto napd =
      eval::MakeDefaultSettings(pipeline, ds, core::NapKind::kDistance);
  core::InferenceConfig naid_cfg = napd[0].config;
  naid_cfg.batch_size = 500;
  naid_cfg.inter_batch_parallelism = 0;  // one batch shard per pool thread
  core::InferenceConfig vanilla_cfg;
  vanilla_cfg.nap = core::NapKind::kNone;
  vanilla_cfg.t_max = 0;
  vanilla_cfg.batch_size = 500;
  vanilla_cfg.inter_batch_parallelism = 0;
  const eval::MethodResult ref_naid =
      eval::RunNai(*engine, ds, test, naid_cfg, "NAId");
  const eval::MethodResult ref_vanilla =
      eval::RunNai(*engine, ds, test, vanilla_cfg, "SGC");
  std::printf("unsharded:  NAId %.1f ms   SGC %.1f ms\n",
              ref_naid.row.time_ms, ref_vanilla.row.time_ms);

  std::printf("\n%-7s %-9s %-10s %-10s %-12s %-12s %-12s %s\n", "shards",
              "thr/shard", "halo %", "build ms", "NAId ms", "SGC ms",
              "prop-MACs x", "exact?");
  for (const int num_shards : {1, 2, 4, 8}) {
    if (num_shards > ds.data.graph.num_nodes()) break;
    const auto build_start = Clock::now();
    auto sharded = eval::MakeShardedEngine(pipeline, ds, num_shards);
    const double build_ms = MsSince(build_start);

    std::int64_t shard_nodes = 0, halo_nodes = 0;
    for (const auto& shard : sharded->sharded_graph().shards) {
      shard_nodes += static_cast<std::int64_t>(shard.nodes.size());
      halo_nodes += shard.num_halo();
    }
    const double halo_pct =
        shard_nodes == 0
            ? 0.0
            : 100.0 * static_cast<double>(halo_nodes) /
                  static_cast<double>(shard_nodes);

    const eval::MethodResult naid =
        eval::RunShardedNai(*sharded, ds, test, naid_cfg, "NAId");
    const eval::MethodResult vanilla =
        eval::RunShardedNai(*sharded, ds, test, vanilla_cfg, "SGC");

    const bool exact = naid.predictions == ref_naid.predictions &&
                       vanilla.predictions == ref_vanilla.predictions;
    // > 1 when the shard split broke up co-batched queries and their shared
    // supporting-set work is recomputed per shard.
    const double prop_ratio = bench::Ratio(
        static_cast<double>(naid.stats.propagation_macs),
        static_cast<double>(ref_naid.stats.propagation_macs));
    std::printf("%-7d %-9d %-10.1f %-10.1f %-12.1f %-12.1f %-12.2f %s\n",
                num_shards, sharded->threads_per_shard(), halo_pct, build_ms,
                naid.row.time_ms, vanilla.row.time_ms, prop_ratio,
                exact ? "yes" : "NO — MISMATCH");
    if (!exact) return 1;
  }
  return 0;
}
