// Figure 6: hyper-parameter sensitivity of Inception Distillation on
// flickr-sim (base model SGC). Sweeps λ and T for both distillation stages
// and the ensemble size r, reporting the accuracy of f^(1) — the paper's
// most distillation-sensitive classifier.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/eval/datasets.h"
#include "src/eval/harness.h"

namespace {

using namespace nai;

float F1Accuracy(const eval::PreparedDataset& ds,
                 const eval::PipelineConfig& cfg) {
  eval::PipelineConfig local = cfg;
  local.train_gates = false;
  eval::TrainedPipeline pipeline = eval::TrainPipeline(ds, local);
  auto engine = eval::MakeEngine(pipeline, ds);
  core::InferenceConfig icfg;
  icfg.nap = core::NapKind::kNone;
  icfg.t_max = 1;
  icfg.batch_size = 500;
  return eval::RunNai(*engine, ds, ds.split.test_nodes, icfg, "f1")
      .row.accuracy;
}

}  // namespace

int main(int argc, char** argv) {
  nai::bench::ApplyThreadsFlag(argc, argv);
  using namespace nai;
  bench::Banner("Figure 6 — Inception Distillation sensitivity (flickr-sim)");
  // A reduced-size preset: the sweep trains 17 pipelines.
  eval::DatasetSpec spec = eval::FlickrSim(0.3 * eval::EnvScale());
  const eval::PreparedDataset ds = eval::Prepare(spec);
  eval::PipelineConfig base = bench::BenchPipelineConfig();
  base.distill.base_epochs = 80;
  base.distill.single_epochs = 50;
  base.distill.multi_epochs = 40;

  std::printf("\n-- lambda sweep (single-scale / multi-scale) --\n");
  for (const float lambda : {0.0f, 0.3f, 0.6f, 0.9f}) {
    eval::PipelineConfig cfg = base;
    cfg.distill.lambda_single = lambda;
    const float acc_s = F1Accuracy(ds, cfg);
    cfg = base;
    cfg.distill.lambda_multi = lambda;
    const float acc_m = F1Accuracy(ds, cfg);
    std::printf("lambda=%.1f  single-scale ACC %.2f%%   multi-scale ACC %.2f%%\n",
                lambda, acc_s * 100, acc_m * 100);
  }

  std::printf("\n-- temperature sweep (single-scale / multi-scale) --\n");
  for (const float T : {1.0f, 1.4f, 1.8f}) {
    eval::PipelineConfig cfg = base;
    cfg.distill.temperature_single = T;
    const float acc_s = F1Accuracy(ds, cfg);
    cfg = base;
    cfg.distill.temperature_multi = T;
    const float acc_m = F1Accuracy(ds, cfg);
    std::printf("T=%.1f  single-scale ACC %.2f%%   multi-scale ACC %.2f%%\n",
                T, acc_s * 100, acc_m * 100);
  }

  std::printf("\n-- ensemble size r sweep --\n");
  for (const int r : {1, 3, 5, 7}) {
    eval::PipelineConfig cfg = base;
    cfg.distill.ensemble_size = r;
    std::printf("r=%d  ACC %.2f%%\n", r, F1Accuracy(ds, cfg) * 100);
  }
  return 0;
}
